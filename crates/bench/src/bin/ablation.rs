//! Experiment E2: ablation of the paper's two design choices — the
//! rounding parameter ρ (Eq. 19) and the cap μ (Eq. 20) — measured on
//! fixed workloads and compared with the analytic min–max bound that the
//! paper optimizes.
//!
//! `cargo run --release -p mtsp-bench --bin ablation`

use mtsp_analysis::minmax;
use mtsp_analysis::ratio::{our_params, Params};
use mtsp_bench::Table;
use mtsp_core::two_phase::{schedule_jz_with, JzConfig};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

fn main() {
    let m = 16usize;
    let paper = our_params(m);
    let workloads = [
        ("layered", DagFamily::Layered),
        ("cholesky", DagFamily::Cholesky),
        ("series-parallel", DagFamily::SeriesParallel),
    ];

    println!(
        "== rho ablation (mu = paper's {} fixed, m = {m}) ==",
        paper.mu
    );
    let mut t = Table::new(vec![
        "rho",
        "bound r",
        "layered",
        "cholesky",
        "series-parallel",
    ]);
    for i in 0..=10 {
        let rho = i as f64 / 10.0;
        let mut cells = vec![
            format!("{rho:.1}"),
            format!("{:.4}", minmax::objective(m, paper.mu, rho)),
        ];
        for (_, df) in &workloads {
            let ins = random_instance(*df, CurveFamily::Mixed, 50, m, 99);
            let cfg = JzConfig {
                params: Some(Params { rho, mu: paper.mu }),
                ..JzConfig::default()
            };
            let rep = schedule_jz_with(&ins, &cfg).expect("schedules");
            cells.push(format!("{:.3}", rep.ratio_vs_cstar()));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    println!();
    println!(
        "== mu ablation (rho = paper's {} fixed, m = {m}) ==",
        paper.rho
    );
    let mut t = Table::new(vec![
        "mu",
        "bound r",
        "layered",
        "cholesky",
        "series-parallel",
    ]);
    for mu in 1..=m.div_ceil(2) {
        let mut cells = vec![
            mu.to_string(),
            format!("{:.4}", minmax::objective(m, mu, paper.rho)),
        ];
        for (_, df) in &workloads {
            let ins = random_instance(*df, CurveFamily::Mixed, 50, m, 99);
            let cfg = JzConfig {
                params: Some(Params { rho: paper.rho, mu }),
                ..JzConfig::default()
            };
            let rep = schedule_jz_with(&ins, &cfg).expect("schedules");
            cells.push(format!("{:.3}", rep.ratio_vs_cstar()));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!(
        "paper's choice: rho = {}, mu = {} -> bound {:.4}",
        paper.rho,
        paper.mu,
        minmax::objective(m, paper.mu, paper.rho)
    );
    println!("note: the bound is a worst case; measured ratios respond much more");
    println!("mildly to the parameters, which is consistent with the paper's");
    println!("strategy of optimizing the analytical bound rather than tuning per");
    println!("instance.");
}
