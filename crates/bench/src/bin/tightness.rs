//! Experiment E7: constructive tightness probe for the approximation
//! bound. The paper proves r(m) (Table 2) and states the result is
//! asymptotically tight; this harness *constructs* hard instances and
//! reports how much of the bound they realize:
//!
//! * **chains of perfectly-parallel tasks** — the LP crashes every task to
//!   `p(m)` and `C* = OPT = Σ p_j(m)`; phase 2 caps allotments at `μ(m)`,
//!   so the delivered makespan is exactly `(m/μ)·OPT`: a *true* lower
//!   bound of `m/μ(m)` on the algorithm's worst-case ratio with the
//!   paper's parameters (asymptotically `1/0.3259 ≈ 3.068`, i.e. ≈93% of
//!   the proven `3.2919`);
//! * **path-vs-area mixes** — a poorly-parallelizable chain plus parallel
//!   fillers, stressing both terms of `max{L, W/m}` at once.
//!
//! `cargo run --release -p mtsp-bench --bin tightness`

use mtsp_analysis::ratio::{our_params, table2_row};
use mtsp_bench::Table;
use mtsp_core::two_phase::schedule_jz;
use mtsp_model::suite;
use mtsp_model::{Instance, Profile};

/// Chain of `n` linear-speedup tasks: the adversarial family above.
fn linear_chain(n: usize, m: usize) -> Instance {
    let dag = mtsp_dag::generate::chain(n);
    let profiles = vec![Profile::power_law(8.0, 1.0, m).unwrap(); n];
    Instance::new(dag, profiles).unwrap()
}

fn main() {
    let mut t = Table::new(vec![
        "m",
        "mu(m)",
        "bound r(m)",
        "chain ratio",
        "m/mu (exact)",
        "tightness",
        "mix ratio",
    ]);
    for m in [4usize, 8, 12, 16, 24, 32, 48, 64] {
        let p = our_params(m);
        let (_, _, _, bound) = table2_row(m);

        let chain = linear_chain(12, m);
        let rep = schedule_jz(&chain).expect("schedules");
        rep.schedule.verify(&chain).expect("feasible");
        let chain_ratio = rep.ratio_vs_cstar();
        let exact = m as f64 / p.mu as f64;
        assert!(
            (chain_ratio - exact).abs() < 1e-6,
            "m={m}: chain ratio {chain_ratio} != m/mu {exact}"
        );

        let mix = suite::path_vs_area(m, 8, 3 * m);
        let rep_mix = schedule_jz(&mix).expect("schedules");
        t.row(vec![
            m.to_string(),
            p.mu.to_string(),
            format!("{bound:.4}"),
            format!("{chain_ratio:.4}"),
            format!("{exact:.4}"),
            format!("{:.0}%", 100.0 * chain_ratio / bound),
            format!("{:.4}", rep_mix.ratio_vs_cstar()),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("'chain ratio' equals Cmax/OPT exactly on this family (C* = OPT there),");
    println!("so it certifies a TRUE lower bound on the worst case of the algorithm");
    println!("with the paper's parameters: the Table 2 analysis is ~88-96% tight");
    println!("already on trivial chains; the min-max program charges the remaining");
    println!("slack to slot-structure interactions that chains do not exhibit.");
}
