//! Experiment E5 (extension beyond the paper): how much a ±1-processor
//! local search on top of the two-phase algorithm's allotment improves the
//! measured makespan — and at what evaluation cost.
//!
//! `cargo run --release -p mtsp-bench --bin improvement`

use mtsp_bench::{Table, EMPIRICAL_MS};
use mtsp_core::improve::{improve_allotment, ImproveOptions};
use mtsp_core::two_phase::schedule_jz;
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

fn main() {
    let mut t = Table::new(vec![
        "dag family",
        "m",
        "two-phase ratio",
        "improved ratio",
        "gain",
        "moves",
        "LIST evals",
    ]);
    for df in [
        DagFamily::Layered,
        DagFamily::Cholesky,
        DagFamily::SeriesParallel,
        DagFamily::RandomTree,
    ] {
        for &m in &EMPIRICAL_MS {
            let mut base_sum = 0.0;
            let mut imp_sum = 0.0;
            let mut moves = 0usize;
            let mut evals = 0usize;
            let reps = 3u64;
            for seed in 0..reps {
                let ins = random_instance(df, CurveFamily::Mixed, 40, m, seed);
                let rep = schedule_jz(&ins).expect("schedules");
                let out = improve_allotment(&ins, &rep.alloc, &ImproveOptions::default());
                out.schedule.verify(&ins).expect("feasible");
                base_sum += rep.schedule.makespan() / rep.lp.cstar;
                imp_sum += out.schedule.makespan() / rep.lp.cstar;
                moves += out.moves;
                evals += out.evaluations;
            }
            let k = reps as f64;
            t.row(vec![
                format!("{df:?}"),
                m.to_string(),
                format!("{:.3}", base_sum / k),
                format!("{:.3}", imp_sum / k),
                format!("{:.1}%", 100.0 * (1.0 - imp_sum / base_sum)),
                format!("{:.1}", moves as f64 / k),
                format!("{:.0}", evals as f64 / k),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!("the improvement never regresses (hill climbing accepts only strictly");
    println!("better schedules) and the worst-case guarantee of the starting point");
    println!("continues to hold; this quantifies how much head-room the rounding");
    println!("leaves on typical instances.");
}
