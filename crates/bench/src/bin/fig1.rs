//! Regenerates **Fig. 1** of the paper: the concave speedup polyline
//! `s_j(l)` versus `l`, and the convex work polyline `w_j(p_j(l))` versus
//! the processing time, for a representative malleable task. Emits CSV
//! series ready for plotting.
//!
//! `cargo run --release -p mtsp-bench --bin fig1`

use mtsp_model::{assumptions, Profile, WorkFunction};

fn emit(name: &str, p: &Profile) {
    let rep = assumptions::verify(p);
    println!(
        "# {name}: A1 = {}, A2 = {}, A2' = {}, work convex = {}",
        rep.assumption1, rep.assumption2, rep.assumption2_prime, rep.work_convex_in_time
    );
    println!("# series 1 (left diagram): l, speedup s(l)");
    println!("l,speedup");
    for l in 1..=p.m() {
        println!("{l},{:.6}", p.speedup(l));
    }
    println!("# series 2 (right diagram): processing time x = p(l), work w(x), allotment l");
    println!("time,work,allot");
    let wf = WorkFunction::from_profile(p).expect("A1 holds");
    for (t, w, l) in wf.breakpoints() {
        println!("{t:.6},{w:.6},{l}");
    }
    println!();
}

fn main() {
    println!("# Fig. 1 data: speedup and work-function diagrams");
    // The paper's canonical example family p(l) = p(1) l^{-d}.
    emit(
        "power law p(1)=8, d=0.5, m=8",
        &Profile::power_law(8.0, 0.5, 8).unwrap(),
    );
    emit(
        "Amdahl p(1)=8, f=0.2, m=8",
        &Profile::amdahl(8.0, 0.2, 8).unwrap(),
    );
    // The Section 2 counterexample: satisfies A1 and A2' but NOT A2 —
    // its speedup curve is convex, visibly unlike Fig. 1's.
    emit(
        "counterexample p(l)=1/(1-d+d l^2), d=0.01, m=8",
        &Profile::counterexample_a2(0.01, 8).unwrap(),
    );
}
