//! Experiment E4: execution-time noise on the simulated machine. The
//! paper's model hides machine effects inside p_j(l); this experiment
//! quantifies how the planned makespan degrades when realized durations
//! deviate by ±eps (uniform) or by one-sided slowdowns.
//!
//! `cargo run --release -p mtsp-bench --bin robustness`

use mtsp_bench::Table;
use mtsp_core::two_phase::schedule_jz;
use mtsp_core::Priority;
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_sim::{execute_online, NoiseModel};

fn main() {
    let runs = 25u64;
    let mut t = Table::new(vec![
        "dag family",
        "m",
        "planned",
        "eps=5% mean",
        "eps=10% mean",
        "eps=10% worst",
        "slow 10% mean",
    ]);
    for df in [
        DagFamily::Layered,
        DagFamily::Cholesky,
        DagFamily::Wavefront,
    ] {
        for m in [8usize, 16] {
            let ins = random_instance(df, CurveFamily::Mixed, 40, m, 7);
            let rep = schedule_jz(&ins).expect("schedules");
            let planned = rep.schedule.makespan();
            let stats = |noise: NoiseModel| {
                let mut sum = 0.0f64;
                let mut worst = 0.0f64;
                for seed in 0..runs {
                    let s = execute_online(&ins, &rep.alloc, Priority::TaskId, noise, seed);
                    sum += s.makespan();
                    worst = worst.max(s.makespan());
                }
                (sum / runs as f64, worst)
            };
            let (m5, _) = stats(NoiseModel::Uniform { epsilon: 0.05 });
            let (m10, w10) = stats(NoiseModel::Uniform { epsilon: 0.10 });
            let (s10, _) = stats(NoiseModel::Slowdown { epsilon: 0.10 });
            t.row(vec![
                format!("{df:?}"),
                m.to_string(),
                format!("{planned:.3}"),
                format!("{m5:.3}"),
                format!("{m10:.3}"),
                format!("{w10:.3}"),
                format!("{s10:.3}"),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!("({runs} noise seeds per cell; the list policy re-packs online, so mean");
    println!("degradation stays close to the noise amplitude itself.)");
}
