//! Daemon serving-path economics: request dispatch through the sharded
//! registry, and what the shared solve cache buys across tenants.
//!
//! Two axes. `serve/script` pushes a fixed multi-session wire script
//! through an in-process [`Registry`](mtsp_serve::Registry) at 1 and 4
//! shards — replies are byte-identical (the daemon's determinism
//! contract, asserted in the harness audit), so the delta is pure
//! dispatch and queue overhead. `serve/solve_cache` issues the same
//! `SOLVE` body from many tenants with the cache on and off: the shared
//! content-addressed cache should collapse N solves into one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_engine::EngineConfig;
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_model::textio::write_instance;
use mtsp_serve::daemon::serve_script;
use mtsp_serve::{Quotas, Registry, ServeConfig};

/// A session-driving script: four tenants, arrivals satisfying the model
/// assumptions (A1/A2), edges, replans, a snapshot each.
fn session_script() -> String {
    let mut s = String::new();
    for tenant in ["acme", "zork", "hilo", "wave"] {
        s.push_str(&format!(
            "\
OPEN {tenant} s1 4
ARRIVE {tenant} s1 0.0 8.0 5.0 4.0 3.5
ARRIVE {tenant} s1 0.0 6.0 3.25 2.5 2.25
ARRIVE {tenant} s1 0.0 5.0 2.75 2.0 1.75
EDGE {tenant} s1 0.0 0 1
REPLAN {tenant} s1 0.0
START {tenant} s1 0.5 0
FINISH {tenant} s1 2.5 0
REPLAN {tenant} s1 2.5
SNAPSHOT {tenant} s1
CLOSE {tenant} s1
"
        ));
    }
    s
}

/// The same `SOLVE` body billed to eight different tenants.
fn solve_script() -> String {
    let ins = random_instance(DagFamily::Layered, CurveFamily::Mixed, 10, 4, 11);
    let body = write_instance(&ins);
    let k = body.lines().count();
    let mut s = String::new();
    for i in 0..8 {
        s.push_str(&format!("SOLVE tenant{i} {k}\n{body}"));
    }
    s
}

fn config(shards: usize, cache: bool) -> ServeConfig {
    ServeConfig {
        shards,
        quotas: Quotas::unlimited(),
        engine: EngineConfig {
            workers: 1,
            cache,
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn bench_script_dispatch(c: &mut Criterion) {
    let script = session_script();
    let mut group = c.benchmark_group("serve/script");
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let reg = Registry::new(config(shards, false)).unwrap();
                    let out = serve_script(&reg, &script);
                    reg.shutdown();
                    out
                });
            },
        );
    }
    group.finish();
}

fn bench_solve_cache(c: &mut Criterion) {
    let script = solve_script();
    let mut group = c.benchmark_group("serve/solve_cache");
    group.sample_size(20);
    for cache in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if cache { "shared" } else { "off" }),
            &cache,
            |b, &cache| {
                b.iter(|| {
                    let reg = Registry::new(config(2, cache)).unwrap();
                    let out = serve_script(&reg, &script);
                    reg.shutdown();
                    out
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_script_dispatch, bench_solve_cache);
criterion_main!(benches);
