//! End-to-end two-phase algorithm across workload families and sizes —
//! the wall-clock companion of the empirical quality study (E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::two_phase::schedule_jz;
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_phase");
    g.sample_size(10);
    for df in [
        DagFamily::Layered,
        DagFamily::Cholesky,
        DagFamily::Wavefront,
    ] {
        for &(n, m) in &[(30usize, 8usize), (60, 16)] {
            let ins = random_instance(df, CurveFamily::Mixed, n, m, 7);
            g.bench_with_input(
                BenchmarkId::new(format!("{df:?}"), format!("n{}_m{m}", ins.n())),
                &ins,
                |b, ins| b.iter(|| schedule_jz(ins).unwrap()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_improve);
criterion_main!(benches);

// Appended: local-search post-pass cost (E5's wall-clock side).
fn bench_improve(c: &mut Criterion) {
    use mtsp_core::improve::{improve_allotment, ImproveOptions};
    let mut g = c.benchmark_group("improve");
    g.sample_size(10);
    let ins = random_instance(DagFamily::Cholesky, CurveFamily::Mixed, 40, 16, 3);
    let rep = schedule_jz(&ins).unwrap();
    g.bench_function("local_search_n40_m16", |b| {
        b.iter(|| improve_allotment(&ins, &rep.alloc, &ImproveOptions::default()))
    });
    g.finish();
}
