//! Analysis toolkit performance: full table regenerations (the artifacts
//! of Tables 2-4) and the asymptotic root isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use mtsp_analysis::{asymptotic, grid, ltw, ratio};

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table2_full", |b| {
        b.iter(|| (2..=33).map(ratio::table2_row).collect::<Vec<_>>())
    });
    c.bench_function("table3_full", |b| {
        b.iter(|| (2..=33).map(ltw::table3_row).collect::<Vec<_>>())
    });
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("grid_m33_serial", |b| {
        b.iter(|| grid::grid_search(33, 10_000, 1))
    });
    g.bench_function("grid_m33_parallel4", |b| {
        b.iter(|| grid::grid_search(33, 10_000, 4))
    });
    g.finish();
    c.bench_function("asymptotic_rho_root", |b| {
        b.iter(asymptotic::asymptotic_rho)
    });
    c.bench_function("equation21_optimal_rho_m33", |b| {
        b.iter(|| asymptotic::optimal_rho(33))
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
