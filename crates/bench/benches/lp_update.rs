//! Forrest–Tomlin (eta-file) update economics: warm `resolve` against the
//! refactorize-per-resolve baseline on the bisection's deadline-sweep
//! access pattern, up to n ≥ 500.
//!
//! The acceptance target of the factorization-update layer is visible
//! here: after a deadline nudge, a warm resolve re-pivots through
//! product-form eta updates of the standing basis factorization, while
//! the cold baseline (`warm_start = false`) refactorizes and re-pivots
//! from scratch — the per-resolve cost the eta file eliminates. Answers
//! are bitwise-identical either way (asserted in the `mtsp-lp` suite), so
//! the delta is pure factorization reuse. The large entries are for
//! manual perf passes; CI only compiles this bench (`cargo bench
//! --no-run`). The `mtsp audit` gate enforces the same comparison
//! continuously as a deterministic pivot-work floor
//! (`perf_floor_ft_resolve_speedup`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_lp::{Lp, Relation, SolveContext, SolverOptions, VarId};

/// Layers of width 8, complete bipartite between neighbours — the
/// precedence density of the harness's layered family at scale.
fn layered_edges(n: usize) -> Vec<(usize, usize)> {
    let w = 8;
    let mut e = Vec::new();
    for j in w..n {
        let layer = j / w;
        for p in 0..w {
            let pred = (layer - 1) * w + p;
            if pred < n {
                e.push((pred, j));
            }
        }
    }
    e
}

/// The deadline-LP shape of `mtsp-core`'s bisection: completion variables
/// bounded by the deadline, one crash variable per task, one ~3-nonzero
/// row per precedence arc. Returns the model and the completion handles.
fn deadline_lp(n: usize, edges: &[(usize, usize)], deadline: f64) -> (Lp, Vec<VarId>) {
    let mut lp = Lp::minimize();
    let completion: Vec<VarId> = (0..n).map(|_| lp.add_var(0.0, deadline, 0.0)).collect();
    let serial = |j: usize| 2.0 + (j % 5) as f64;
    let crash: Vec<VarId> = (0..n)
        .map(|j| lp.add_var(0.0, serial(j) * 0.5, 1.0 + (j % 3) as f64 * 0.5))
        .collect();
    let mut has_pred = vec![false; n];
    for &(i, j) in edges {
        has_pred[j] = true;
        lp.add_row(
            &[
                (completion[i], 1.0),
                (completion[j], -1.0),
                (crash[j], -1.0),
            ],
            Relation::Le,
            -serial(j),
        );
    }
    for j in 0..n {
        if !has_pred[j] {
            lp.add_row(
                &[(completion[j], -1.0), (crash[j], -1.0)],
                Relation::Le,
                -serial(j),
            );
        }
    }
    (lp, completion)
}

/// One resolve per iteration: the deadline bounds alternate between two
/// nearby values (the end-game of a bisection, where probes cluster), so
/// every iteration re-optimizes a freshly perturbed model from the
/// standing basis. Warm rides the eta file; cold refactorizes and
/// re-pivots from scratch — the per-resolve gap the FT layer closes.
fn bench_single_resolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_update_resolve");
    g.sample_size(10);
    let warm = SolverOptions::default();
    let cold = SolverOptions {
        warm_start: false,
        ..SolverOptions::default()
    };
    for n in [128usize, 256, 512] {
        let top = 6.5 * n as f64;
        let (lp, completion) = deadline_lp(n, &layered_edges(n), top);
        for (label, opts) in [("warm", &warm), ("cold", &cold)] {
            g.bench_with_input(BenchmarkId::new(label, n), &lp, |b, lp| {
                let mut ctx = SolveContext::new();
                ctx.solve(lp, opts).expect("bench LP solves");
                let mut flip = false;
                b.iter(|| {
                    let d = if flip { top * 0.45 } else { top * 0.44 };
                    flip = !flip;
                    for &v in &completion {
                        ctx.set_var_bounds(v, 0.0, d)
                            .expect("completion var exists");
                    }
                    ctx.resolve(opts).expect("resolve succeeds").objective
                })
            });
        }
    }
    g.finish();
}

/// A ~10-step deadline sweep, descending then backtracking — the access
/// pattern of one whole bisection.
fn sweep_deadlines(top: f64) -> Vec<f64> {
    vec![
        top,
        top * 0.7,
        top * 0.55,
        top * 0.47,
        top * 0.43,
        top * 0.41,
        top * 0.45,
        top * 0.42,
        top * 0.44,
        top * 0.435,
    ]
}

/// The whole sweep per iteration: one cold load then nine resolves, warm
/// carrying the basis (and its eta-file factorization) probe to probe,
/// cold restarting every time — the n ≥ 500 form of the acceptance
/// comparison.
fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_update_sweep");
    g.sample_size(10);
    let warm = SolverOptions::default();
    let cold = SolverOptions {
        warm_start: false,
        ..SolverOptions::default()
    };
    for n in [128usize, 512] {
        let top = 6.5 * n as f64;
        let (lp, completion) = deadline_lp(n, &layered_edges(n), top);
        let deadlines = sweep_deadlines(top);
        for (label, opts) in [("warm", &warm), ("cold", &cold)] {
            g.bench_with_input(BenchmarkId::new(label, n), &lp, |b, lp| {
                b.iter(|| {
                    let mut ctx = SolveContext::new();
                    let mut obj = ctx.solve(lp, opts).expect("bench LP solves").objective;
                    for &d in &deadlines[1..] {
                        for &v in &completion {
                            ctx.set_var_bounds(v, 0.0, d)
                                .expect("completion var exists");
                        }
                        let sol = ctx.resolve(opts).expect("resolve succeeds");
                        if sol.status == mtsp_lp::Status::Optimal {
                            obj += sol.objective;
                        }
                    }
                    obj
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_single_resolve, bench_sweep);
criterion_main!(benches);
