//! LP substrate performance: revised simplex vs the reference tableau on
//! allotment LPs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::allotment::{solve_allotment, solve_allotment_direct};
use mtsp_lp::SolverOptions;
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

fn bench_allotment_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("allotment_lp");
    g.sample_size(10);
    for &(n, m) in &[(20usize, 8usize), (50, 16), (100, 16), (100, 32)] {
        let ins = random_instance(DagFamily::Layered, CurveFamily::Mixed, n, m, 42);
        g.bench_with_input(
            BenchmarkId::new("crashing_form", format!("n{n}_m{m}")),
            &ins,
            |b, ins| b.iter(|| solve_allotment(ins, &SolverOptions::default()).unwrap()),
        );
        if n <= 50 {
            g.bench_with_input(
                BenchmarkId::new("direct_form", format!("n{n}_m{m}")),
                &ins,
                |b, ins| b.iter(|| solve_allotment_direct(ins, &SolverOptions::default()).unwrap()),
            );
        }
    }
    g.finish();
}

fn bench_presolve(c: &mut Criterion) {
    use mtsp_lp::{solve_presolved, Lp, Relation};
    // A bound-heavy LP where presolve strips many singleton rows.
    let build = || {
        let mut lp = Lp::minimize();
        let vars: Vec<_> = (0..120)
            .map(|i| lp.add_var(0.0, 10.0, ((i % 7) as f64) - 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.add_row(&[(v, 1.0)], Relation::Le, 5.0 + (i % 3) as f64);
        }
        for w in vars.windows(4).step_by(3) {
            let coeffs: Vec<_> = w.iter().map(|&v| (v, 1.0)).collect();
            lp.add_row(&coeffs, Relation::Le, 12.0);
        }
        lp
    };
    let lp = build();
    let mut g = c.benchmark_group("presolve");
    g.bench_function("raw_solve", |b| b.iter(|| lp.solve().unwrap()));
    g.bench_function("presolved_solve", |b| {
        b.iter(|| solve_presolved(&lp, &SolverOptions::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_allotment_lp, bench_presolve);
criterion_main!(benches);
