//! Batch engine throughput: sequential solving vs the deterministic
//! worker pool, cold vs warm solve cache, and the canonical hashing cost.
//!
//! The acceptance target of the engine subsystem is visible here: with a
//! warm cache the batch path must beat sequential re-solving by well over
//! 2x (every job degenerates to a canonical hash plus a shard lookup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_engine::{instance_key, Engine, EngineConfig};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_model::Instance;

/// A mixed batch: `k` jobs cycling over `distinct` distinct instances.
fn batch(k: usize, distinct: usize, n: usize, m: usize) -> Vec<Instance> {
    (0..k)
        .map(|i| {
            random_instance(
                DagFamily::Layered,
                CurveFamily::Mixed,
                n,
                m,
                (i % distinct) as u64,
            )
        })
        .collect()
}

fn bench_batch_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_batch");
    g.sample_size(10);
    let jobs = batch(32, 8, 16, 8);

    let sequential = Engine::new(EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    });
    g.bench_with_input(
        BenchmarkId::new("sequential_no_cache", jobs.len()),
        &jobs,
        |b, jobs| b.iter(|| sequential.solve_batch(jobs)),
    );

    let pooled = Engine::new(EngineConfig {
        workers: 8,
        cache: false,
        ..EngineConfig::default()
    });
    g.bench_with_input(
        BenchmarkId::new("pool8_no_cache", jobs.len()),
        &jobs,
        |b, jobs| b.iter(|| pooled.solve_batch(jobs)),
    );

    let warm = Engine::new(EngineConfig {
        workers: 8,
        cache: true,
        ..EngineConfig::default()
    });
    warm.solve_batch(&jobs); // prime the cache
    g.bench_with_input(
        BenchmarkId::new("pool8_warm_cache", jobs.len()),
        &jobs,
        |b, jobs| b.iter(|| warm.solve_batch(jobs)),
    );
    g.finish();
}

fn bench_canon(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_canon");
    g.sample_size(50);
    for (n, m) in [(20usize, 8usize), (100, 16), (400, 32)] {
        let ins = random_instance(DagFamily::Layered, CurveFamily::Mixed, n, m, 7);
        g.bench_with_input(
            BenchmarkId::new("instance_key", format!("n{}_m{m}", ins.n())),
            &ins,
            |b, ins| b.iter(|| instance_key(ins)),
        );
    }
    g.finish();
}

fn bench_warm_speedup_report(c: &mut Criterion) {
    // Not a micro-bench: one explicit comparative measurement, printed so
    // `cargo bench` output directly reports the warm-cache speedup.
    let jobs = batch(100, 10, 16, 8);
    let sequential = Engine::new(EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    });
    let warm = Engine::new(EngineConfig {
        workers: 8,
        cache: true,
        ..EngineConfig::default()
    });
    warm.solve_batch(&jobs);
    let seq = sequential.solve_batch(&jobs);
    let hot = warm.solve_batch(&jobs);
    assert_eq!(
        seq.render_results(),
        hot.render_results(),
        "batch output must not depend on pool/cache mode"
    );
    println!(
        "engine_warm_speedup: sequential {:.1} jobs/s vs warm pool {:.1} jobs/s => {:.1}x",
        seq.metrics.throughput,
        hot.metrics.throughput,
        hot.metrics.throughput / seq.metrics.throughput.max(1e-12)
    );
    let mut g = c.benchmark_group("engine_warm");
    g.sample_size(10);
    g.bench_function("solve_batch_100_warm", |b| {
        b.iter(|| warm.solve_batch(&jobs))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_modes,
    bench_canon,
    bench_warm_speedup_report
);
criterion_main!(benches);
