//! Simulator performance: static execution with processor booking and the
//! online noisy replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::{list_schedule, Priority};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_sim::{execute, execute_online, NoiseModel};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for &(n, m) in &[(200usize, 16usize), (1000, 32)] {
        let ins = random_instance(DagFamily::Layered, CurveFamily::Mixed, n, m, 13);
        let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % 3).collect();
        let schedule = list_schedule(&ins, &alloc, Priority::TaskId);
        g.bench_with_input(
            BenchmarkId::new("static_execute", format!("n{}_m{m}", ins.n())),
            &(&ins, &schedule),
            |b, (ins, s)| b.iter(|| execute(ins, s).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("contiguous_list", format!("n{}_m{m}", ins.n())),
            &(&ins, &alloc),
            |b, (ins, alloc)| b.iter(|| mtsp_sim::list_schedule_contiguous(ins, alloc)),
        );
        g.bench_with_input(
            BenchmarkId::new("online_noisy", format!("n{}_m{m}", ins.n())),
            &(&ins, &alloc),
            |b, (ins, alloc)| {
                b.iter(|| {
                    execute_online(
                        ins,
                        alloc,
                        Priority::TaskId,
                        NoiseModel::Uniform { epsilon: 0.1 },
                        5,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
