//! DAG substrate performance: generators, topological order, critical
//! paths and transitive reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_dag::{generate, paths, topo};

fn bench_dag(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    for &n in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("layered_random", n), &n, |b, &n| {
            b.iter(|| generate::layered_random(n / 10, (5, 15), 0.3, 42))
        });
        g.bench_with_input(BenchmarkId::new("series_parallel", n), &n, |b, &n| {
            b.iter(|| generate::series_parallel(n, 42))
        });
    }
    g.bench_function("cholesky_b12", |b| b.iter(|| generate::cholesky(12)));
    g.finish();

    let big = generate::layered_random(60, (10, 30), 0.25, 3);
    let w: Vec<f64> = (0..big.node_count())
        .map(|v| 1.0 + (v % 7) as f64)
        .collect();
    c.bench_function("topological_order_n1k", |b| {
        b.iter(|| topo::topological_order(&big).unwrap())
    });
    c.bench_function("critical_path_n1k", |b| {
        b.iter(|| paths::critical_path(&big, &w))
    });
    let small = generate::layered_random(12, (4, 8), 0.4, 5);
    c.bench_function("transitive_reduction_n70", |b| {
        b.iter(|| small.transitive_reduction())
    });
    c.bench_function("dilworth_width_n70", |b| {
        b.iter(|| mtsp_dag::antichain::width(&small))
    });
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
