//! Phase-2 LIST scheduler throughput on large task graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::{list_schedule, Priority};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

fn bench_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_schedule");
    for &(n, m) in &[(200usize, 16usize), (1000, 32), (2000, 64)] {
        let ins = random_instance(DagFamily::Layered, CurveFamily::PowerLaw, n, m, 11);
        let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % (m / 2)).collect();
        for prio in [Priority::TaskId, Priority::BottomLevel] {
            g.bench_with_input(
                BenchmarkId::new(format!("{prio:?}"), format!("n{}_m{m}", ins.n())),
                &(&ins, &alloc),
                |b, (ins, alloc)| b.iter(|| list_schedule(ins, alloc, prio)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_list);
criterion_main!(benches);
