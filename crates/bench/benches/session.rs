//! Online session economics: warm epoch re-planning vs cold re-solving.
//!
//! The acceptance target of the session subsystem is visible here: a full
//! arrival-scenario replay whose epochs re-plan through one long-lived
//! warm `SolveContext` must measurably beat the same replay rebuilding a
//! cold context every epoch — with `Phase1::Bisection` each epoch's
//! deadline sweep additionally warm-starts probe-to-probe from the
//! previous basis (the axis measured at 3–9x for the batch pipeline in
//! `lp_warmstart.rs`). Both variants produce byte-identical plans
//! (asserted in the session and replay test suites), so the delta is pure
//! re-plan latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::two_phase::{JzConfig, Phase1};
use mtsp_engine::SessionConfig;
use mtsp_model::generate::{CurveFamily, DagFamily};
use mtsp_model::textio::Scenario;
use mtsp_sim::{arrival_scenario, replay, ArrivalPattern, NoiseModel, ReplayConfig};

fn scenario(n: usize, m: usize) -> Scenario {
    arrival_scenario(
        DagFamily::Layered,
        CurveFamily::Mixed,
        n,
        m,
        ArrivalPattern::Bursty,
        0.4,
        7,
    )
}

/// `warm = true`: one long-lived context, dual-simplex warm starts on
/// (every bisection probe restarts from the previous basis). `warm =
/// false`: fresh context per epoch and `warm_start = false` — every probe
/// a full cold solve, the from-scratch re-solve baseline.
fn cfg(phase1: Phase1, warm: bool) -> ReplayConfig {
    ReplayConfig {
        session: SessionConfig {
            jz: JzConfig {
                phase1,
                solver: mtsp_lp::SolverOptions {
                    warm_start: warm,
                    ..mtsp_lp::SolverOptions::default()
                },
                ..JzConfig::default()
            },
            reuse_context: warm,
            reuse_epoch_lp: warm,
        },
        noise: NoiseModel::Uniform { epsilon: 0.1 },
        seed: 7,
    }
}

fn bench_epoch_replans(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_replay");
    g.sample_size(10);
    for (n, m) in [(24usize, 8usize), (48, 8)] {
        let sc = scenario(n, m);
        let label = format!("n{}_m{m}", sc.ins.n());
        for (phase1, tag) in [(Phase1::Lp, "lp"), (Phase1::Bisection, "bisection")] {
            g.bench_with_input(
                BenchmarkId::new(format!("{tag}_warm"), &label),
                &sc,
                |b, sc| b.iter(|| replay(sc, &cfg(phase1, true)).unwrap()),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{tag}_cold"), &label),
                &sc,
                |b, sc| b.iter(|| replay(sc, &cfg(phase1, false)).unwrap()),
            );
        }
    }
    g.finish();
}

/// Isolates the re-plan itself (no dispatch, no noise): one warm session
/// absorbing an arrival stream epoch by epoch vs a cold context rebuilt
/// for every epoch — the serving-loop hot path.
fn bench_replan_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_replan_only");
    g.sample_size(10);
    let sc = scenario(32, 8);
    for (warm, tag) in [(true, "warm"), (false, "cold")] {
        g.bench_with_input(BenchmarkId::new(tag, sc.ins.n()), &sc, |b, sc| {
            b.iter(|| {
                let mut s = mtsp_engine::ScheduleSession::new(
                    sc.ins.m(),
                    cfg(Phase1::Bisection, warm).session,
                )
                .unwrap();
                let mut order = sc.ins.dag().topological_order();
                order.sort_by(|&a, &b| sc.arrival[a].partial_cmp(&sc.arrival[b]).unwrap());
                let mut sess = vec![usize::MAX; sc.ins.n()];
                let mut last = f64::NEG_INFINITY;
                for &j in &order {
                    let t = sc.arrival[j];
                    if t > last && last != f64::NEG_INFINITY {
                        s.replan(last).unwrap();
                    }
                    sess[j] = s.arrive(sc.ins.profile(j).clone(), t).unwrap();
                    for &i in sc.ins.dag().preds(j) {
                        s.add_dependency(sess[i], sess[j], t).unwrap();
                    }
                    last = t;
                }
                s.replan(last).unwrap();
                s.epochs().len()
            })
        });
    }
    g.finish();
}

/// Large-n noise-only re-plans: all tasks arrive (with edges) at time
/// zero, the session plans once and starts the first task, then absorbs
/// repeated pure-noise re-plans at advancing clocks — the serving-loop
/// shape where cross-epoch LP reuse pays. Warm keeps the suffix LP
/// loaded between epochs (rhs re-aim + warm continuation); cold rebuilds
/// context and LP every epoch. These entries are for manual perf passes
/// (CI compiles them via `cargo bench --no-run`); the `mtsp audit` gate
/// enforces the same comparison continuously as a deterministic
/// pivot-work floor (`perf_floor_epoch_reuse_speedup`).
fn bench_replan_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_replan_large");
    g.sample_size(10);
    for (n, m) in [(96usize, 16usize), (256, 16)] {
        let sc = scenario(n, m);
        let label = format!("n{}_m{m}", sc.ins.n());
        for (warm, tag) in [(true, "warm"), (false, "cold")] {
            g.bench_with_input(BenchmarkId::new(tag, &label), &sc, |b, sc| {
                b.iter(|| {
                    let mut s = mtsp_engine::ScheduleSession::new(
                        sc.ins.m(),
                        cfg(Phase1::Bisection, warm).session,
                    )
                    .unwrap();
                    for j in 0..sc.ins.n() {
                        s.arrive(sc.ins.profile(j).clone(), 0.0).unwrap();
                    }
                    for j in 0..sc.ins.n() {
                        for &i in sc.ins.dag().preds(j) {
                            s.add_dependency(i, j, 0.0).unwrap();
                        }
                    }
                    s.replan(0.0).unwrap();
                    let first = sc.ins.dag().topological_order()[0];
                    s.mark_started(first, 0.0).unwrap();
                    for k in 1..=3usize {
                        s.replan(k as f64 * 0.1).unwrap();
                    }
                    s.epochs().len()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_epoch_replans,
    bench_replan_only,
    bench_replan_large
);
criterion_main!(benches);
