//! Warm-start economics of the LP core: cold solves vs warm dual-simplex
//! re-solves across deadline sweeps, the full bisection pipeline with and
//! without basis reuse, and the sparse revised simplex vs the dense
//! reference tableau — on chain, diamond (fork–join) and layered DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtsp_core::allotment::solve_allotment_bisection;
use mtsp_lp::{tableau, Lp, Relation, SolveContext, SolverOptions, VarId};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};

/// Edge list of a synthetic DAG family.
fn edges(family: &str, n: usize) -> Vec<(usize, usize)> {
    match family {
        "chain" => (1..n).map(|j| (j - 1, j)).collect(),
        "diamond" => {
            // A chain of 4-node diamonds: 0→{1,2}→3 → {4,5} → 6 → …
            let mut e = Vec::new();
            let mut base = 0;
            while base + 3 < n {
                e.push((base, base + 1));
                e.push((base, base + 2));
                e.push((base + 1, base + 3));
                e.push((base + 2, base + 3));
                base += 3;
            }
            e
        }
        "layered" => {
            // Layers of width 4, complete bipartite between neighbours.
            let w = 4;
            let mut e = Vec::new();
            for j in w..n {
                let layer = j / w;
                for p in 0..w {
                    let pred = (layer - 1) * w + p;
                    if pred < n {
                        e.push((pred, j));
                    }
                }
            }
            e
        }
        other => panic!("unknown family {other}"),
    }
}

/// The deadline-LP shape of `mtsp-core`'s bisection: completion variables
/// bounded by the deadline, one crash variable per task, one ~3-nonzero
/// row per precedence arc. Returns the model and the completion handles.
fn deadline_lp(n: usize, edges: &[(usize, usize)], deadline: f64) -> (Lp, Vec<VarId>) {
    let mut lp = Lp::minimize();
    let completion: Vec<VarId> = (0..n).map(|_| lp.add_var(0.0, deadline, 0.0)).collect();
    let serial = |j: usize| 2.0 + (j % 5) as f64;
    let crash: Vec<VarId> = (0..n)
        .map(|j| lp.add_var(0.0, serial(j) * 0.5, 1.0 + (j % 3) as f64 * 0.5))
        .collect();
    let mut has_pred = vec![false; n];
    for &(i, j) in edges {
        has_pred[j] = true;
        lp.add_row(
            &[
                (completion[i], 1.0),
                (completion[j], -1.0),
                (crash[j], -1.0),
            ],
            Relation::Le,
            -serial(j),
        );
    }
    for j in 0..n {
        if !has_pred[j] {
            lp.add_row(
                &[(completion[j], -1.0), (crash[j], -1.0)],
                Relation::Le,
                -serial(j),
            );
        }
    }
    (lp, completion)
}

/// A ~10-step deadline sweep, descending then backtracking — the access
/// pattern of the bisection.
fn sweep_deadlines(top: f64) -> Vec<f64> {
    vec![
        top,
        top * 0.7,
        top * 0.55,
        top * 0.47,
        top * 0.43,
        top * 0.41,
        top * 0.45,
        top * 0.42,
        top * 0.44,
        top * 0.435,
    ]
}

fn bench_warm_vs_cold_resolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_resolve_sweep");
    g.sample_size(10);
    for &(family, n) in &[("chain", 60usize), ("diamond", 61), ("layered", 64)] {
        let es = edges(family, n);
        let top = 6.5 * n as f64;
        let deadlines = sweep_deadlines(top);
        let (lp, completion) = deadline_lp(n, &es, top);
        let warm = SolverOptions::default();
        let cold = SolverOptions {
            warm_start: false,
            ..SolverOptions::default()
        };
        for (label, opts) in [("warm", &warm), ("cold", &cold)] {
            g.bench_with_input(BenchmarkId::new(label, family), &lp, |b, lp| {
                b.iter(|| {
                    // One cold solve to load, then 9 resolves along the
                    // sweep — warm keeps the basis, cold restarts.
                    let mut ctx = SolveContext::new();
                    let mut obj = 0.0;
                    let first = ctx.solve(lp, opts).unwrap();
                    obj += first.objective;
                    for &d in &deadlines[1..] {
                        for &v in &completion {
                            ctx.set_var_bounds(v, 0.0, d).unwrap();
                        }
                        let sol = ctx.resolve(opts).unwrap();
                        if sol.status == mtsp_lp::Status::Optimal {
                            obj += sol.objective;
                        }
                    }
                    obj
                })
            });
        }
    }
    g.finish();
}

fn bench_bisection_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("bisection_pipeline");
    g.sample_size(10);
    let warm = SolverOptions::default();
    let cold = SolverOptions {
        warm_start: false,
        ..SolverOptions::default()
    };
    for &(dag, name, n, m) in &[
        (DagFamily::Chain, "chain", 30usize, 8usize),
        (DagFamily::ForkJoin, "diamond", 30, 8),
        (DagFamily::Layered, "layered", 40, 16),
    ] {
        let ins = random_instance(dag, CurveFamily::Mixed, n, m, 42);
        g.bench_with_input(BenchmarkId::new("warm", name), &ins, |b, ins| {
            b.iter(|| solve_allotment_bisection(ins, &warm, 1e-7).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cold", name), &ins, |b, ins| {
            b.iter(|| solve_allotment_bisection(ins, &cold, 1e-7).unwrap())
        });
    }
    g.finish();
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_vs_dense_tableau");
    g.sample_size(10);
    for &(family, n) in &[("chain", 40usize), ("diamond", 40), ("layered", 48)] {
        let es = edges(family, n);
        let (lp, _) = deadline_lp(n, &es, 3.0 * n as f64);
        g.bench_with_input(BenchmarkId::new("sparse_revised", family), &lp, |b, lp| {
            b.iter(|| lp.solve().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("dense_tableau", family), &lp, |b, lp| {
            b.iter(|| tableau::solve_reference(lp).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_warm_vs_cold_resolve,
    bench_bisection_pipeline,
    bench_sparse_vs_dense
);
criterion_main!(benches);
