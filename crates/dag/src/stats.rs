//! Summary statistics for task graphs, used to characterize benchmark
//! workloads in the experiment reports.

use crate::graph::Dag;
use crate::topo;

/// Aggregate shape statistics of a DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    /// Number of tasks.
    pub nodes: usize,
    /// Number of precedence arcs.
    pub edges: usize,
    /// Nodes on a longest path (hop count).
    pub depth: usize,
    /// Maximum layer size of the longest-path layering — a cheap lower
    /// bound on the maximum antichain (the true width).
    pub layer_width: usize,
    /// Number of source nodes.
    pub sources: usize,
    /// Number of sink nodes.
    pub sinks: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Edge density relative to the n(n−1)/2 possible ordered pairs.
    pub density: f64,
    /// Average parallelism proxy: nodes / depth.
    pub avg_parallelism: f64,
}

impl DagStats {
    /// The exact width (maximum antichain) — `O(n·E_closure)`, so kept out
    /// of [`DagStats::of`]; see [`crate::antichain::width`].
    pub fn exact_width(g: &Dag) -> usize {
        crate::antichain::width(g)
    }

    /// Computes statistics for `g`.
    pub fn of(g: &Dag) -> Self {
        let n = g.node_count();
        let depth = topo::depth(g);
        let layer_width = topo::layers(g).iter().map(Vec::len).max().unwrap_or(0);
        let max_in = (0..n).map(|v| g.in_degree(v)).max().unwrap_or(0);
        let max_out = (0..n).map(|v| g.out_degree(v)).max().unwrap_or(0);
        let pairs = if n >= 2 { n * (n - 1) / 2 } else { 0 };
        DagStats {
            nodes: n,
            edges: g.edge_count(),
            depth,
            layer_width,
            sources: g.sources().len(),
            sinks: g.sinks().len(),
            max_in_degree: max_in,
            max_out_degree: max_out,
            density: if pairs == 0 {
                0.0
            } else {
                g.edge_count() as f64 / pairs as f64
            },
            avg_parallelism: if depth == 0 {
                0.0
            } else {
                n as f64 / depth as f64
            },
        }
    }
}

impl std::fmt::Display for DagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} e={} depth={} width>={} src={} snk={} deg(in/out)={}/{} dens={:.3} par={:.2}",
            self.nodes,
            self.edges,
            self.depth,
            self.layer_width,
            self.sources,
            self.sinks,
            self.max_in_degree,
            self.max_out_degree,
            self.density,
            self.avg_parallelism
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_of_chain() {
        let s = DagStats::of(&generate::chain(5));
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.depth, 5);
        assert_eq!(s.layer_width, 1);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert!((s.avg_parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_independent() {
        let s = DagStats::of(&generate::independent(8));
        assert_eq!(s.depth, 1);
        assert_eq!(s.layer_width, 8);
        assert_eq!(s.density, 0.0);
        assert!((s.avg_parallelism - 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = DagStats::of(&Dag::new(0));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.avg_parallelism, 0.0);
    }

    #[test]
    fn display_is_compact_one_liner() {
        let s = DagStats::of(&generate::fork_join(3, 2));
        let line = s.to_string();
        assert!(line.contains("n=9"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn density_of_total_order() {
        let g = generate::random_order_dag(6, 1.0, 0);
        let s = DagStats::of(&g);
        assert!((s.density - 1.0).abs() < 1e-12);
    }
}
