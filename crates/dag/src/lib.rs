#![warn(missing_docs)]
//! # mtsp-dag — precedence-DAG substrate
//!
//! Directed acyclic graphs representing precedence constraints between
//! (malleable) tasks, as used throughout Jansen & Zhang, *Scheduling
//! malleable tasks with precedence constraints* (SPAA 2005 / JCSS 2012).
//!
//! The crate provides:
//!
//! * [`Dag`] — a compact adjacency-list DAG over dense node ids with
//!   incremental cycle rejection ([`Dag::add_edge`]).
//! * Topological orders, layering and reachability ([`topo`]).
//! * Weighted longest ("critical") paths, earliest/latest start times and
//!   bottom levels ([`paths`]).
//! * Structured and random task-graph generators that mirror the workloads
//!   motivating the paper: chains, fork–join, trees, layered random graphs,
//!   series–parallel graphs, wavefront stencils, blocked Cholesky/LU
//!   factorizations and FFT butterflies ([`generate`]).
//! * Summary statistics and Graphviz export ([`stats`], [`dot`]).
//!
//! Node ids are plain `usize` indices in `0..n`; every algorithm in the
//! workspace indexes per-task arrays by `NodeId`, avoiding hash maps on hot
//! paths (cf. the HPC performance guidance this workspace follows).
//!
//! ```
//! use mtsp_dag::Dag;
//!
//! let mut g = Dag::new(3);
//! g.add_edge(0, 1).unwrap();
//! g.add_edge(1, 2).unwrap();
//! assert!(g.add_edge(2, 0).is_err()); // would close a cycle
//! assert_eq!(g.topological_order(), vec![0, 1, 2]);
//! ```

pub mod antichain;
pub mod dot;
pub mod error;
pub mod generate;
pub mod graph;
pub mod paths;
pub mod stats;
pub mod topo;

pub use antichain::{maximum_antichain, minimum_chain_cover, width};
pub use error::DagError;
pub use graph::{Dag, NodeId};
pub use paths::{critical_path, earliest_starts, CriticalPath};
pub use stats::DagStats;
