//! Topological orders, layerings and level structure.

use crate::error::DagError;
use crate::graph::{Dag, NodeId};

/// Kahn's algorithm. Returns a topological order, or
/// [`DagError::CycleDetected`] if the graph contains a directed cycle.
///
/// The order is deterministic: among ready nodes the smallest id is taken
/// first (a binary heap would change asymptotics; we use a simple FIFO after
/// seeding with ascending ids which is deterministic and O(n + m)).
pub fn topological_order(g: &Dag) -> Result<Vec<NodeId>, DagError> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut queue: std::collections::VecDeque<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.succs(u) {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(DagError::CycleDetected)
    }
}

/// `true` iff `order` is a permutation of `0..n` consistent with all arcs.
pub fn is_topological_order(g: &Dag, order: &[NodeId]) -> bool {
    let n = g.node_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v >= n || pos[v] != usize::MAX {
            return false;
        }
        pos[v] = i;
    }
    g.edges().all(|(u, v)| pos[u] < pos[v])
}

/// Assigns every node its *level*: length (in arcs) of the longest directed
/// path ending at the node. Sources get level 0.
pub fn levels(g: &Dag) -> Vec<usize> {
    let order = g.topological_order();
    let mut lvl = vec![0usize; g.node_count()];
    for &u in &order {
        for &v in g.succs(u) {
            lvl[v] = lvl[v].max(lvl[u] + 1);
        }
    }
    lvl
}

/// Groups node ids by [`levels`]: `layers()[k]` is the set of nodes at
/// level `k`, each sorted ascending. The result is a *layering* of the DAG
/// (every arc goes from a lower to a strictly higher layer).
pub fn layers(g: &Dag) -> Vec<Vec<NodeId>> {
    let lvl = levels(g);
    let depth = lvl.iter().copied().max().map_or(0, |d| d + 1);
    let mut out = vec![Vec::new(); depth];
    for (v, &k) in lvl.iter().enumerate() {
        out[k].push(v);
    }
    out
}

/// Number of nodes on a longest directed path (the *depth* of the DAG in
/// hop count). Zero for the empty graph.
pub fn depth(g: &Dag) -> usize {
    if g.node_count() == 0 {
        0
    } else {
        levels(g).iter().copied().max().unwrap_or(0) + 1
    }
}

/// All nodes reachable from `start` (including `start`), ascending.
pub fn descendants(g: &Dag, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(u) = stack.pop() {
        for &v in g.succs(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    (0..g.node_count()).filter(|&v| seen[v]).collect()
}

/// All nodes that reach `end` (including `end`), ascending.
pub fn ancestors(g: &Dag, end: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![end];
    seen[end] = true;
    while let Some(u) = stack.pop() {
        for &v in g.preds(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    (0..g.node_count()).filter(|&v| seen[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_of_diamond_is_valid() {
        let g = diamond();
        let order = topological_order(&g).unwrap();
        assert!(is_topological_order(&g, &order));
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn topo_order_of_edgeless_graph() {
        let g = Dag::new(3);
        assert_eq!(topological_order(&g).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn is_topological_order_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topological_order(&g, &[3, 1, 2, 0]));
        assert!(!is_topological_order(&g, &[0, 1, 2])); // wrong length
        assert!(!is_topological_order(&g, &[0, 0, 1, 2])); // repeated
        assert!(is_topological_order(&g, &[0, 2, 1, 3]));
    }

    #[test]
    fn levels_and_layers_of_diamond() {
        let g = diamond();
        assert_eq!(levels(&g), vec![0, 1, 1, 2]);
        assert_eq!(layers(&g), vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(depth(&g), 3);
    }

    #[test]
    fn depth_edge_cases() {
        assert_eq!(depth(&Dag::new(0)), 0);
        assert_eq!(depth(&Dag::new(4)), 1);
        let chain = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(depth(&chain), 3);
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = diamond();
        assert_eq!(descendants(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(descendants(&g, 1), vec![1, 3]);
        assert_eq!(ancestors(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(ancestors(&g, 2), vec![0, 2]);
    }

    #[test]
    fn levels_respect_longest_path_not_shortest() {
        // 0->1->2 and 0->2: node 2 must be at level 2.
        let g = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(levels(&g), vec![0, 1, 2]);
    }
}
