//! The [`Dag`] type: a dense-id precedence graph.

use crate::error::DagError;

/// Dense node identifier: tasks are numbered `0..n`.
///
/// Using a plain index keeps all per-task state in flat `Vec`s, the layout
/// every hot loop in the workspace relies on.
pub type NodeId = usize;

/// A directed acyclic graph over nodes `0..n` with both forward and reverse
/// adjacency, maintained acyclic at all times.
///
/// An arc `(i, j)` means task `j` cannot start before task `i` completes
/// (`i` is a *predecessor* of `j`, written `i ∈ Γ⁻(j)` in the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dag {
    /// `succs[u]` = Γ⁺(u), ordered by insertion.
    succs: Vec<Vec<NodeId>>,
    /// `preds[v]` = Γ⁻(v), ordered by insertion.
    preds: Vec<Vec<NodeId>>,
    /// Total number of arcs.
    m: usize,
}

impl Dag {
    /// Creates a DAG with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dag {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a DAG from an edge list, rejecting cycles, self-loops and
    /// duplicates.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, DagError> {
        let mut g = Dag::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of arcs.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// `true` iff the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors Γ⁺(u) of a node.
    #[inline]
    pub fn succs(&self, u: NodeId) -> &[NodeId] {
        &self.succs[u]
    }

    /// Predecessors Γ⁻(v) of a node.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v]
    }

    /// Out-degree |Γ⁺(u)|.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succs[u].len()
    }

    /// In-degree |Γ⁻(v)|.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds[v].len()
    }

    /// Iterator over all arcs in insertion order per source node.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Nodes with no predecessors (ready immediately).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&v| self.preds[v].is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&u| self.succs[u].is_empty())
            .collect()
    }

    /// `true` iff arc `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.node_count() && self.succs[u].contains(&v)
    }

    /// Adds arc `(u, v)`, keeping the graph acyclic.
    ///
    /// Rejects out-of-range endpoints, self-loops, duplicates, and arcs that
    /// would close a directed cycle (checked with a DFS from `v`; cost
    /// O(n + m) worst case, cheap on the sparse graphs used here).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), DagError> {
        let n = self.node_count();
        if u >= n {
            return Err(DagError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(DagError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(DagError::SelfLoop(u));
        }
        if self.succs[u].contains(&v) {
            return Err(DagError::DuplicateEdge(u, v));
        }
        if self.reaches(v, u) {
            return Err(DagError::WouldCycle { from: u, to: v });
        }
        self.succs[u].push(v);
        self.preds[v].push(u);
        self.m += 1;
        Ok(())
    }

    /// Adds arc `(u, v)` without the acyclicity check.
    ///
    /// Intended for generators that construct edges in a known topological
    /// direction (`u < v` in generation order). Still rejects range errors,
    /// self-loops and duplicates so invariants other than acyclicity hold.
    pub fn add_edge_unchecked(&mut self, u: NodeId, v: NodeId) -> Result<(), DagError> {
        let n = self.node_count();
        if u >= n {
            return Err(DagError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(DagError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(DagError::SelfLoop(u));
        }
        if self.succs[u].contains(&v) {
            return Err(DagError::DuplicateEdge(u, v));
        }
        self.succs[u].push(v);
        self.preds[v].push(u);
        self.m += 1;
        Ok(())
    }

    /// `true` iff there is a directed path from `u` to `v` (including `u == v`).
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        // Iterative DFS over successors with an explicit stack.
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![u];
        seen[u] = true;
        while let Some(x) = stack.pop() {
            for &s in &self.succs[x] {
                if s == v {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// The reverse DAG (every arc flipped).
    pub fn reversed(&self) -> Dag {
        Dag {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
            m: self.m,
        }
    }

    /// Disjoint union: nodes of `other` are renumbered by `+self.node_count()`.
    pub fn disjoint_union(&self, other: &Dag) -> Dag {
        let off = self.node_count();
        let mut g = self.clone();
        g.succs.extend(
            other
                .succs
                .iter()
                .map(|vs| vs.iter().map(|&v| v + off).collect()),
        );
        g.preds.extend(
            other
                .preds
                .iter()
                .map(|vs| vs.iter().map(|&v| v + off).collect()),
        );
        g.m += other.m;
        g
    }

    /// The transitive closure as a boolean reachability matrix
    /// (`closure[u][v]` ⇔ `u` reaches `v`, `u ≠ v`). O(n·(n+m)).
    #[allow(clippy::needless_range_loop)] // paired-row borrow split needs indices
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        let n = self.node_count();
        let mut closure = vec![vec![false; n]; n];
        // Process in reverse topological order so each node's row is the
        // union of its successors' rows.
        let order = crate::topo::topological_order(self).expect("Dag invariant: graph is acyclic");
        for &u in order.iter().rev() {
            for &v in &self.succs[u] {
                closure[u][v] = true;
                // closure[u] |= closure[v]
                let (row_u, row_v) = if u < v {
                    let (a, b) = closure.split_at_mut(v);
                    (&mut a[u], &b[0])
                } else {
                    let (a, b) = closure.split_at_mut(u);
                    (&mut b[0], &a[v])
                };
                for (cu, cv) in row_u.iter_mut().zip(row_v.iter()) {
                    *cu |= *cv;
                }
            }
        }
        closure
    }

    /// The transitive reduction: the unique minimal sub-DAG with the same
    /// reachability relation. Returns a new graph.
    pub fn transitive_reduction(&self) -> Dag {
        let closure = self.transitive_closure();
        let n = self.node_count();
        let mut g = Dag::new(n);
        for (u, v) in self.edges() {
            // Keep (u,v) unless some other successor w of u reaches v.
            let redundant = self.succs[u].iter().any(|&w| w != v && closure[w][v]);
            if !redundant {
                g.add_edge_unchecked(u, v)
                    .expect("reduction edges are unique and in range");
            }
        }
        g
    }

    /// Convenience: shorthand for [`crate::topo::topological_order`],
    /// panicking if the invariant were ever violated (it cannot be through
    /// the safe API).
    pub fn topological_order(&self) -> Vec<NodeId> {
        crate::topo::topological_order(self).expect("Dag invariant: graph is acyclic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> {1,2} -> 3
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Dag::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sources(), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.sinks(), vec![0, 1, 2, 3, 4]);
        assert!(!g.is_empty());
        assert!(Dag::new(0).is_empty());
    }

    #[test]
    fn add_edge_maintains_adjacency() {
        let g = diamond();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Dag::new(2);
        assert_eq!(
            g.add_edge(0, 2),
            Err(DagError::NodeOutOfRange { node: 2, n: 2 })
        );
        assert_eq!(
            g.add_edge(5, 0),
            Err(DagError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut g = Dag::new(3);
        assert_eq!(g.add_edge(1, 1), Err(DagError::SelfLoop(1)));
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(0, 1), Err(DagError::DuplicateEdge(0, 1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_cycles() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        assert_eq!(
            g.add_edge(3, 0),
            Err(DagError::WouldCycle { from: 3, to: 0 })
        );
        assert_eq!(
            g.add_edge(2, 0),
            Err(DagError::WouldCycle { from: 2, to: 0 })
        );
        // Unrelated edge still fine.
        g.add_edge(0, 3).unwrap();
    }

    #[test]
    fn reaches_is_reflexive_transitive() {
        let g = diamond();
        assert!(g.reaches(0, 0));
        assert!(g.reaches(0, 3));
        assert!(g.reaches(1, 3));
        assert!(!g.reaches(1, 2));
        assert!(!g.reaches(3, 0));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let g2 = Dag::from_edges(4, &edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn reversed_flips_arcs() {
        let g = diamond();
        let r = g.reversed();
        assert!(r.has_edge(3, 1));
        assert!(r.has_edge(1, 0));
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn disjoint_union_offsets_ids() {
        let a = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let b = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.node_count(), 4);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 3));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn transitive_closure_of_chain() {
        let g = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = g.transitive_closure();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(c[u][v], u < v, "closure[{u}][{v}]");
            }
        }
    }

    #[test]
    fn transitive_reduction_removes_shortcuts() {
        // chain 0->1->2 plus shortcut 0->2
        let g = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let r = g.transitive_reduction();
        assert_eq!(r.edge_count(), 2);
        assert!(r.has_edge(0, 1));
        assert!(r.has_edge(1, 2));
        assert!(!r.has_edge(0, 2));
    }

    #[test]
    fn transitive_reduction_keeps_diamond() {
        let g = diamond();
        let r = g.transitive_reduction();
        assert_eq!(r, g);
    }

    #[test]
    fn from_edges_detects_cycles() {
        let res = Dag::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(matches!(res, Err(DagError::WouldCycle { .. })));
    }
}
