//! Task-graph generators.
//!
//! The paper motivates malleable scheduling with numeric workloads on large
//! parallel machines (structure-driven compilation of numeric problems,
//! adaptive-mesh ocean circulation, FFTs). These generators produce the
//! corresponding DAG shapes, plus random families for stress testing:
//!
//! * deterministic shapes: [`chain`], [`independent`], [`fork_join`],
//!   [`out_tree`], [`in_tree`], [`diamond_ladder`], [`wavefront`],
//!   [`cholesky`], [`lu`], [`fft`];
//! * random families: [`layered_random`], [`random_order_dag`],
//!   [`series_parallel`].
//!
//! All random generators take an explicit seed and are fully deterministic
//! for a given seed, so benchmarks and tests are reproducible.

use crate::graph::{Dag, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A path `0 → 1 → … → n−1`. The worst case for parallelism: the critical
/// path contains every task.
pub fn chain(n: usize) -> Dag {
    let mut g = Dag::new(n);
    for i in 1..n {
        g.add_edge_unchecked(i - 1, i)
            .expect("chain edges are valid");
    }
    g
}

/// `n` independent tasks (no precedence constraints); the classical
/// independent-malleable-tasks special case.
pub fn independent(n: usize) -> Dag {
    Dag::new(n)
}

/// Fork–join: a source, `width` parallel tasks, a sink, repeated for
/// `stages` stages. Total nodes: `stages * (width + 1) + 1`.
///
/// Stage boundaries are single synchronization tasks, the shape of
/// bulk-synchronous numeric codes.
pub fn fork_join(width: usize, stages: usize) -> Dag {
    assert!(width >= 1, "fork_join requires width >= 1");
    let n = stages * (width + 1) + 1;
    let mut g = Dag::new(n);
    let mut barrier = 0; // node id of the current synchronization point
    let mut next = 1;
    for _ in 0..stages {
        let first = next;
        for k in 0..width {
            g.add_edge_unchecked(barrier, first + k)
                .expect("fork edges are valid");
        }
        let join = first + width;
        for k in 0..width {
            g.add_edge_unchecked(first + k, join)
                .expect("join edges are valid");
        }
        barrier = join;
        next = join + 1;
    }
    g
}

/// Complete out-tree (root at node 0) of the given `arity` and `depth`
/// (depth = number of levels; depth 1 is a single node).
pub fn out_tree(arity: usize, depth: usize) -> Dag {
    assert!(
        arity >= 1 && depth >= 1,
        "out_tree requires arity,depth >= 1"
    );
    // Node count of a complete arity-ary tree with `depth` levels.
    let mut n = 0usize;
    let mut level = 1usize;
    for _ in 0..depth {
        n += level;
        level *= arity;
    }
    let mut g = Dag::new(n);
    // Nodes are numbered level by level; children of v start at
    // offset(level+1) + (v - offset(level)) * arity.
    let mut offset = 0usize;
    let mut width = 1usize;
    for _ in 0..depth - 1 {
        let next_offset = offset + width;
        for i in 0..width {
            let v = offset + i;
            for c in 0..arity {
                let child = next_offset + i * arity + c;
                g.add_edge_unchecked(v, child)
                    .expect("tree edges are valid");
            }
        }
        offset = next_offset;
        width *= arity;
    }
    g
}

/// Complete in-tree: the reverse of [`out_tree`] (leaves feed a single
/// root-sink). Reduction trees of parallel aggregations.
pub fn in_tree(arity: usize, depth: usize) -> Dag {
    out_tree(arity, depth).reversed()
}

/// A ladder of `k` diamonds chained in sequence; each diamond is
/// `s → {a, b} → t`. A minimal series–parallel stress shape.
pub fn diamond_ladder(k: usize) -> Dag {
    let n = 3 * k + 1;
    let mut g = Dag::new(n.max(1));
    for d in 0..k {
        let s = 3 * d;
        let (a, b, t) = (s + 1, s + 2, s + 3);
        g.add_edge_unchecked(s, a).expect("valid");
        g.add_edge_unchecked(s, b).expect("valid");
        g.add_edge_unchecked(a, t).expect("valid");
        g.add_edge_unchecked(b, t).expect("valid");
    }
    g
}

/// 2-D wavefront on a `rows × cols` grid: task `(i, j)` precedes `(i+1, j)`
/// and `(i, j+1)`. The dependence structure of Gauss–Seidel sweeps, dynamic
/// programming tables and stencil pipelines.
pub fn wavefront(rows: usize, cols: usize) -> Dag {
    let idx = |i: usize, j: usize| i * cols + j;
    let mut g = Dag::new(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                g.add_edge_unchecked(idx(i, j), idx(i + 1, j))
                    .expect("valid");
            }
            if j + 1 < cols {
                g.add_edge_unchecked(idx(i, j), idx(i, j + 1))
                    .expect("valid");
            }
        }
    }
    g
}

/// Blocked (right-looking) Cholesky factorization task graph on a `b × b`
/// lower-triangular block matrix.
///
/// Tasks per step `k`: `POTRF(k)`, `TRSM(i,k)` for `i>k`, and
/// `SYRK/GEMM(i,j,k)` for `i≥j>k`; dependencies follow the classic
/// tiled-Cholesky data flow (the canonical task-based linear-algebra DAG).
#[allow(clippy::needless_range_loop)] // block indices mirror the math
pub fn cholesky(b: usize) -> Dag {
    assert!(b >= 1, "cholesky requires b >= 1");
    // Assign ids: potrf[k], trsm[(i,k)] i>k, syrk[(i,j,k)] i>=j>k.
    let mut id = 0usize;
    let mut potrf = vec![usize::MAX; b];
    let mut trsm = vec![vec![usize::MAX; b]; b]; // trsm[i][k]
    let mut syrk = vec![vec![vec![usize::MAX; b]; b]; b]; // syrk[i][j][k]
    for k in 0..b {
        potrf[k] = id;
        id += 1;
        for i in k + 1..b {
            trsm[i][k] = id;
            id += 1;
        }
        for j in k + 1..b {
            for i in j..b {
                syrk[i][j][k] = id;
                id += 1;
            }
        }
    }
    let mut g = Dag::new(id);
    let mut add = |u: usize, v: usize| {
        // Duplicate arcs can arise from symmetric update patterns; ignore.
        let _ = g.add_edge_unchecked(u, v);
    };
    for k in 0..b {
        // POTRF(k) <- SYRK(k,k,k-1) (the update of block (k,k) at step k-1).
        if k > 0 {
            add(syrk[k][k][k - 1], potrf[k]);
        }
        for i in k + 1..b {
            // TRSM(i,k) <- POTRF(k); TRSM(i,k) <- GEMM(i,k,k-1).
            add(potrf[k], trsm[i][k]);
            if k > 0 {
                add(syrk[i][k][k - 1], trsm[i][k]);
            }
        }
        for j in k + 1..b {
            for i in j..b {
                // SYRK/GEMM(i,j,k) <- TRSM(i,k), TRSM(j,k), and the previous
                // update of the same block.
                add(trsm[i][k], syrk[i][j][k]);
                add(trsm[j][k], syrk[i][j][k]);
                if k > 0 {
                    add(syrk[i][j][k - 1], syrk[i][j][k]);
                }
            }
        }
    }
    g
}

/// Blocked LU factorization (no pivoting) task graph on a `b × b` block
/// matrix: `GETRF(k)`, row/column `TRSM`s and trailing `GEMM` updates.
#[allow(clippy::needless_range_loop)] // block indices mirror the math
pub fn lu(b: usize) -> Dag {
    assert!(b >= 1, "lu requires b >= 1");
    let mut id = 0usize;
    let mut getrf = vec![usize::MAX; b];
    let mut trsm_row = vec![vec![usize::MAX; b]; b]; // trsm_row[k][j], j>k
    let mut trsm_col = vec![vec![usize::MAX; b]; b]; // trsm_col[i][k], i>k
    let mut gemm = vec![vec![vec![usize::MAX; b]; b]; b]; // gemm[i][j][k]
    for k in 0..b {
        getrf[k] = id;
        id += 1;
        for j in k + 1..b {
            trsm_row[k][j] = id;
            id += 1;
        }
        for i in k + 1..b {
            trsm_col[i][k] = id;
            id += 1;
        }
        for i in k + 1..b {
            for j in k + 1..b {
                gemm[i][j][k] = id;
                id += 1;
            }
        }
    }
    let mut g = Dag::new(id);
    let mut add = |u: usize, v: usize| {
        let _ = g.add_edge_unchecked(u, v);
    };
    for k in 0..b {
        if k > 0 {
            add(gemm[k][k][k - 1], getrf[k]);
        }
        for j in k + 1..b {
            add(getrf[k], trsm_row[k][j]);
            if k > 0 {
                add(gemm[k][j][k - 1], trsm_row[k][j]);
            }
        }
        for i in k + 1..b {
            add(getrf[k], trsm_col[i][k]);
            if k > 0 {
                add(gemm[i][k][k - 1], trsm_col[i][k]);
            }
        }
        for i in k + 1..b {
            for j in k + 1..b {
                add(trsm_col[i][k], gemm[i][j][k]);
                add(trsm_row[k][j], gemm[i][j][k]);
                if k > 0 {
                    add(gemm[i][j][k - 1], gemm[i][j][k]);
                }
            }
        }
    }
    g
}

/// Radix-2 FFT butterfly dataflow on `2^log2n` points: `log2n` stages of
/// `2^(log2n-1)` butterfly tasks; each butterfly depends on the two
/// butterflies of the previous stage feeding its inputs.
pub fn fft(log2n: u32) -> Dag {
    let n = 1usize << log2n;
    let half = n / 2;
    let stages = log2n as usize;
    if stages == 0 {
        return Dag::new(1);
    }
    let mut g = Dag::new(stages * half);
    let id = |s: usize, b: usize| s * half + b;
    // Stage s combines points differing in bit s (decimation in time).
    // Butterfly b of stage s handles the point pair (p, p | 1<<s) where p is
    // b with a zero inserted at bit position s.
    let pair_of = |s: usize, b: usize| -> (usize, usize) {
        let low_mask = (1usize << s) - 1;
        let low = b & low_mask;
        let high = (b & !low_mask) << 1;
        let p = high | low;
        (p, p | (1 << s))
    };
    // For each point, remember which butterfly of the previous stage wrote it.
    let mut writer = vec![usize::MAX; n];
    for s in 0..stages {
        let mut new_writer = vec![usize::MAX; n];
        for b in 0..half {
            let (p, q) = pair_of(s, b);
            let t = id(s, b);
            if s > 0 {
                for src in [writer[p], writer[q]] {
                    if src != usize::MAX {
                        let _ = g.add_edge_unchecked(src, t);
                    }
                }
            }
            new_writer[p] = t;
            new_writer[q] = t;
        }
        writer = new_writer;
    }
    g
}

/// Random layered DAG: `layers` layers whose widths are drawn uniformly
/// from `width_range`; each (u, v) pair in consecutive layers is connected
/// with probability `p`; every non-first-layer node gets at least one
/// predecessor from the previous layer so the layering is tight.
pub fn layered_random(layers: usize, width_range: (usize, usize), p: f64, seed: u64) -> Dag {
    assert!(layers >= 1, "layered_random requires layers >= 1");
    let (lo, hi) = width_range;
    assert!(1 <= lo && lo <= hi, "invalid width range");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let widths: Vec<usize> = (0..layers).map(|_| rng.gen_range(lo..=hi)).collect();
    let n: usize = widths.iter().sum();
    let mut g = Dag::new(n);
    let mut offset = 0usize;
    for l in 1..layers {
        let prev_off = offset;
        let prev_w = widths[l - 1];
        offset += prev_w;
        for j in 0..widths[l] {
            let v = offset + j;
            let mut connected = false;
            for i in 0..prev_w {
                if rng.gen_bool(p) {
                    g.add_edge_unchecked(prev_off + i, v).expect("layered edge");
                    connected = true;
                }
            }
            if !connected {
                let i = rng.gen_range(0..prev_w);
                g.add_edge_unchecked(prev_off + i, v).expect("layered edge");
            }
        }
    }
    g
}

/// Random out-tree by uniform attachment: node `v ≥ 1` picks a uniformly
/// random parent among `0..v`. Tree-shaped precedence is the special class
/// for which Lepère–Mounié–Trystram gave a (4+ε)-approximation and \[18\]
/// the ratio (3+√5)/2 — a natural comparison family for the experiments.
pub fn random_tree(n: usize, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge_unchecked(parent, v).expect("tree edge is valid");
    }
    g
}

/// Random DAG on a random topological order: each pair `(i, j)` with
/// `i < j` in the order becomes an arc with probability `p`
/// (G(n, p) on ordered pairs; Erdős–Rényi-style).
pub fn random_order_dag(n: usize, p: f64, seed: u64) -> Dag {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random permutation = random topological order.
    let mut perm: Vec<NodeId> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut g = Dag::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                g.add_edge_unchecked(perm[i], perm[j])
                    .expect("ordered edge");
            }
        }
    }
    g
}

/// Random two-terminal series–parallel DAG with approximately `target`
/// internal composition steps.
///
/// Built by recursive expansion: starting from a single edge, repeatedly
/// replace a uniformly chosen arc by either a series composition
/// (`u→w→v`) or a parallel composition (a second `u→x→v` branch), with
/// equal probability. SP graphs are the class for which the tree-variant of
/// the algorithm (Lepère–Mounié–Trystram) applies, so they are a natural
/// comparison family.
pub fn series_parallel(target: usize, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    // Work on an edge list with grow-only node ids; all edges u < v is NOT
    // guaranteed, but construction never creates cycles (new interior nodes
    // only subdivide or duplicate existing arcs).
    let mut n = 2usize;
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    for _ in 0..target {
        let e = rng.gen_range(0..edges.len());
        let (u, v) = edges[e];
        let w = n;
        n += 1;
        if rng.gen_bool(0.5) {
            // series: u -> w -> v replaces u -> v
            edges[e] = (u, w);
            edges.push((w, v));
        } else {
            // parallel: add u -> w -> v alongside u -> v
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    let mut g = Dag::new(n);
    for (u, v) in edges {
        g.add_edge_unchecked(u, v)
            .expect("sp edges are unique and acyclic");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{depth, is_topological_order, topological_order};

    fn assert_valid(g: &Dag) {
        let order = topological_order(g).expect("generated graph must be acyclic");
        assert!(is_topological_order(g, &order));
    }

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(depth(&g), 5);
        assert_valid(&g);
        assert_eq!(chain(0).node_count(), 0);
        assert_eq!(chain(1).edge_count(), 0);
    }

    #[test]
    fn independent_shape() {
        let g = independent(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 3);
        assert_eq!(g.node_count(), 3 * 5 + 1);
        assert_eq!(g.edge_count(), 3 * 8);
        assert_eq!(depth(&g), 7); // barrier,task,barrier,... = 2*stages+1
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks().len(), 1);
        assert_valid(&g);
    }

    #[test]
    fn out_tree_shape() {
        let g = out_tree(2, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks().len(), 4);
        assert_eq!(depth(&g), 3);
        assert_valid(&g);
    }

    #[test]
    fn in_tree_is_reverse_of_out_tree() {
        let g = in_tree(3, 3);
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.sinks(), vec![0]);
        assert_eq!(g.sources().len(), 9);
        assert_valid(&g);
    }

    #[test]
    fn diamond_ladder_shape() {
        let g = diamond_ladder(3);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(depth(&g), 7);
        assert_valid(&g);
    }

    #[test]
    fn wavefront_shape() {
        let g = wavefront(3, 4);
        assert_eq!(g.node_count(), 12);
        // Horizontal: 3 rows x 3; vertical: 2 x 4.
        assert_eq!(g.edge_count(), 9 + 8);
        assert_eq!(depth(&g), 3 + 4 - 1);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![11]);
        assert_valid(&g);
    }

    #[test]
    fn cholesky_counts() {
        // b=1: single POTRF. b=2: POTRF(0), TRSM(1,0), SYRK(1,1,0), POTRF(1): 4 tasks.
        assert_eq!(cholesky(1).node_count(), 1);
        let g2 = cholesky(2);
        assert_eq!(g2.node_count(), 4);
        assert_valid(&g2);
        // General count: sum_k [1 + (b-k-1) + T(b-k-1)] where T(x)=x(x+1)/2.
        let b = 4;
        let g = cholesky(b);
        let mut expect = 0usize;
        for k in 0..b {
            let r = b - k - 1;
            expect += 1 + r + r * (r + 1) / 2;
        }
        assert_eq!(g.node_count(), expect);
        assert_valid(&g);
        // Every non-initial task has a predecessor.
        assert_eq!(g.sources().len(), 1);
    }

    #[test]
    fn lu_counts() {
        assert_eq!(lu(1).node_count(), 1);
        let b = 3;
        let g = lu(b);
        let mut expect = 0usize;
        for k in 0..b {
            let r = b - k - 1;
            expect += 1 + 2 * r + r * r;
        }
        assert_eq!(g.node_count(), expect);
        assert_eq!(g.sources().len(), 1);
        assert_valid(&g);
    }

    #[test]
    fn fft_shape() {
        let g = fft(3); // 8 points: 3 stages x 4 butterflies
        assert_eq!(g.node_count(), 12);
        assert_valid(&g);
        assert_eq!(depth(&g), 3);
        // Stage-0 butterflies are sources; each later butterfly has exactly
        // two (distinct) predecessors in radix-2 DIT.
        for v in 0..g.node_count() {
            if v < 4 {
                assert_eq!(g.in_degree(v), 0);
            } else {
                assert_eq!(g.in_degree(v), 2, "node {v}");
            }
        }
        assert_eq!(fft(0).node_count(), 1);
    }

    #[test]
    fn layered_random_is_connected_forward() {
        let g = layered_random(6, (2, 5), 0.4, 42);
        assert_valid(&g);
        // Every node beyond the first layer has a predecessor.
        let first_width = g.sources().len();
        assert!((2..=5).contains(&first_width));
        for v in 0..g.node_count() {
            if !g.sources().contains(&v) {
                assert!(g.in_degree(v) >= 1);
            }
        }
        // Deterministic for equal seeds, different across seeds (usually).
        let g2 = layered_random(6, (2, 5), 0.4, 42);
        assert_eq!(g, g2);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(40, 5);
        assert_valid(&g);
        assert_eq!(g.edge_count(), 39);
        assert_eq!(g.sources(), vec![0]);
        // every non-root has exactly one parent
        for v in 1..40 {
            assert_eq!(g.in_degree(v), 1);
        }
        assert_eq!(random_tree(40, 5), g);
        assert_ne!(random_tree(40, 6), g);
        assert_eq!(random_tree(1, 0).edge_count(), 0);
        assert_eq!(random_tree(0, 0).node_count(), 0);
    }

    #[test]
    fn random_order_dag_valid_and_deterministic() {
        let g = random_order_dag(30, 0.15, 7);
        assert_valid(&g);
        assert_eq!(g, random_order_dag(30, 0.15, 7));
        let dense = random_order_dag(10, 1.0, 1);
        assert_eq!(dense.edge_count(), 45);
        let sparse = random_order_dag(10, 0.0, 1);
        assert_eq!(sparse.edge_count(), 0);
    }

    #[test]
    fn series_parallel_valid_two_terminal() {
        let g = series_parallel(25, 3);
        assert_valid(&g);
        assert_eq!(g.node_count(), 27);
        // Exactly one source (0) and one sink (1) by construction.
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![1]);
    }
}
