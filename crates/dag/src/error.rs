//! Error type for DAG construction and queries.

use std::fmt;

/// Errors produced while building or querying a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A node id was `>= n` for a graph with `n` nodes.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge `(u, u)` was rejected.
    SelfLoop(usize),
    /// The edge already exists; duplicate precedence arcs are rejected so
    /// that in-degree counting stays exact.
    DuplicateEdge(usize, usize),
    /// Adding the edge would create a directed cycle (the target already
    /// reaches the source).
    WouldCycle {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// An edge list referenced a cycle (batch construction).
    CycleDetected,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            DagError::SelfLoop(u) => write!(f, "self-loop on node {u} rejected"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v}) rejected"),
            DagError::WouldCycle { from, to } => {
                write!(f, "edge ({from}, {to}) would create a directed cycle")
            }
            DagError::CycleDetected => write!(f, "edge list contains a directed cycle"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_nodes() {
        let e = DagError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(DagError::SelfLoop(2).to_string().contains('2'));
        assert!(DagError::DuplicateEdge(1, 2).to_string().contains("(1, 2)"));
        assert!(DagError::WouldCycle { from: 4, to: 5 }
            .to_string()
            .contains("(4, 5)"));
        assert!(!DagError::CycleDetected.to_string().is_empty());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DagError::CycleDetected);
        assert!(e.to_string().contains("cycle"));
    }
}
