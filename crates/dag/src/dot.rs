//! Graphviz (DOT) export for visual inspection of task graphs and for
//! regenerating the paper's schedule/path illustrations.

use crate::graph::Dag;
use std::fmt::Write as _;

/// Renders the DAG in Graphviz DOT syntax.
///
/// `label` receives each node id and returns the node label; pass
/// `|v| v.to_string()` for bare ids.
pub fn to_dot<F>(g: &Dag, name: &str, mut label: F) -> String
where
    F: FnMut(usize) -> String,
{
    let mut s = String::with_capacity(64 + 24 * (g.node_count() + g.edge_count()));
    // DOT identifiers with spaces need quoting; always quote for simplicity.
    let _ = writeln!(s, "digraph \"{}\" {{", name.replace('"', "'"));
    let _ = writeln!(s, "  rankdir=TB;");
    for v in 0..g.node_count() {
        let _ = writeln!(s, "  n{} [label=\"{}\"];", v, label(v).replace('"', "'"));
    }
    for (u, v) in g.edges() {
        let _ = writeln!(s, "  n{u} -> n{v};");
    }
    s.push_str("}\n");
    s
}

/// Renders with highlighted nodes/arcs (e.g. a critical or "heavy" path,
/// cf. Fig. 2 of the paper). Highlighted nodes are filled; consecutive
/// highlighted nodes connected by an arc get a bold red edge.
pub fn to_dot_highlight(g: &Dag, name: &str, highlight: &[usize]) -> String {
    let on_path = {
        let mut mask = vec![false; g.node_count()];
        for &v in highlight {
            mask[v] = true;
        }
        mask
    };
    let next_on_path = {
        // arc (u,v) highlighted iff u,v adjacent in `highlight`
        let mut set = std::collections::BTreeSet::new();
        for w in highlight.windows(2) {
            set.insert((w[0], w[1]));
        }
        set
    };
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", name.replace('"', "'"));
    let _ = writeln!(s, "  rankdir=TB;");
    for (v, &hl) in on_path.iter().enumerate() {
        if hl {
            let _ = writeln!(
                s,
                "  n{v} [label=\"{v}\", style=filled, fillcolor=lightcoral];"
            );
        } else {
            let _ = writeln!(s, "  n{v} [label=\"{v}\"];");
        }
    }
    for (u, v) in g.edges() {
        if next_on_path.contains(&(u, v)) {
            let _ = writeln!(s, "  n{u} -> n{v} [color=red, penwidth=2.5];");
        } else {
            let _ = writeln!(s, "  n{u} -> n{v};");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = generate::chain(3);
        let dot = to_dot(&g, "chain", |v| format!("T{v}"));
        assert!(dot.starts_with("digraph \"chain\""));
        for v in 0..3 {
            assert!(dot.contains(&format!("n{v} [label=\"T{v}\"]")));
        }
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let g = Dag::new(1);
        let dot = to_dot(&g, "a\"b", |_| "x\"y".into());
        assert!(!dot.contains("\"a\"b\""));
        assert!(dot.contains("a'b"));
        assert!(dot.contains("x'y"));
    }

    #[test]
    fn highlight_marks_path() {
        let g = generate::chain(4);
        let dot = to_dot_highlight(&g, "hl", &[1, 2]);
        assert!(dot.contains("n1 [label=\"1\", style=filled"));
        assert!(dot.contains("n2 [label=\"2\", style=filled"));
        assert!(dot.contains("n1 -> n2 [color=red"));
        assert!(dot.contains("n0 -> n1;")); // not highlighted
    }

    #[test]
    fn highlight_empty_path_is_plain() {
        let g = generate::chain(2);
        let dot = to_dot_highlight(&g, "plain", &[]);
        assert!(!dot.contains("filled"));
        assert!(!dot.contains("red"));
    }
}
