//! Weighted longest paths: critical paths, earliest/latest start times and
//! bottom levels.
//!
//! In the paper a *critical path* of a schedule (or of an allotment α) is a
//! directed path of maximum total processing time; its length `L` lower
//! bounds the makespan (`max{L, W/m} ≤ Cmax`).

use crate::graph::{Dag, NodeId};

/// A critical (maximum-weight) path together with its total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total node weight along the path.
    pub length: f64,
    /// Node ids from a source to a sink, in precedence order.
    pub nodes: Vec<NodeId>,
}

/// Earliest start times under node weights `w` assuming unlimited
/// processors: `est[v] = max over predecessors u of est[u] + w[u]`
/// (0 for sources).
///
/// # Panics
/// Panics if `w.len() != g.node_count()`.
pub fn earliest_starts(g: &Dag, w: &[f64]) -> Vec<f64> {
    assert_eq!(w.len(), g.node_count(), "one weight per node required");
    let order = g.topological_order();
    let mut est = vec![0.0f64; g.node_count()];
    for &u in &order {
        let finish = est[u] + w[u];
        for &v in g.succs(u) {
            if finish > est[v] {
                est[v] = finish;
            }
        }
    }
    est
}

/// Latest start times for a deadline `horizon`: `lst[u] = min over
/// successors v of lst[v] − w[u]`, `horizon − w[u]` for sinks. Slack of a
/// node is `lst − est`; critical nodes have zero slack when `horizon`
/// equals the critical path length.
pub fn latest_starts(g: &Dag, w: &[f64], horizon: f64) -> Vec<f64> {
    assert_eq!(w.len(), g.node_count(), "one weight per node required");
    let order = g.topological_order();
    let mut lst: Vec<f64> = (0..g.node_count()).map(|u| horizon - w[u]).collect();
    for &u in order.iter().rev() {
        for &v in g.succs(u) {
            let bound = lst[v] - w[u];
            if bound < lst[u] {
                lst[u] = bound;
            }
        }
    }
    lst
}

/// *Bottom level* of each node: the maximum total weight of a path starting
/// at the node (inclusive). A classic list-scheduling priority.
pub fn bottom_levels(g: &Dag, w: &[f64]) -> Vec<f64> {
    assert_eq!(w.len(), g.node_count(), "one weight per node required");
    let order = g.topological_order();
    let mut bl: Vec<f64> = w.to_vec();
    for &u in order.iter().rev() {
        let mut best = 0.0f64;
        for &v in g.succs(u) {
            if bl[v] > best {
                best = bl[v];
            }
        }
        bl[u] = w[u] + best;
    }
    bl
}

/// Length of the critical path (maximum over nodes of `est + w`), without
/// materializing the path. Zero for the empty graph.
pub fn critical_path_length(g: &Dag, w: &[f64]) -> f64 {
    let est = earliest_starts(g, w);
    est.iter()
        .zip(w.iter())
        .map(|(&e, &p)| e + p)
        .fold(0.0, f64::max)
}

/// Computes a critical path: a maximum-weight source→sink node sequence.
///
/// Ties are broken toward smaller node ids, making the result deterministic.
/// Returns an empty path (length 0) for the empty graph.
pub fn critical_path(g: &Dag, w: &[f64]) -> CriticalPath {
    let n = g.node_count();
    if n == 0 {
        return CriticalPath {
            length: 0.0,
            nodes: Vec::new(),
        };
    }
    let est = earliest_starts(g, w);
    // The path end is the node maximizing est + w.
    let mut end = 0;
    let mut best = f64::NEG_INFINITY;
    for v in 0..n {
        let f = est[v] + w[v];
        if f > best {
            best = f;
            end = v;
        }
    }
    // Walk backwards: from v, pick the predecessor u with est[u] + w[u] == est[v].
    let mut nodes = vec![end];
    let mut v = end;
    while !g.preds(v).is_empty() {
        let mut chosen = None;
        for &u in g.preds(v) {
            if (est[u] + w[u] - est[v]).abs() <= 1e-9 * (1.0 + est[v].abs()) {
                chosen = match chosen {
                    Some(c) if c <= u => Some(c),
                    _ => Some(u),
                };
            }
        }
        match chosen {
            Some(u) => {
                nodes.push(u);
                v = u;
            }
            // est[v] == 0 with predecessors of zero weight can terminate early.
            None => break,
        }
    }
    nodes.reverse();
    CriticalPath {
        length: best,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn earliest_starts_diamond() {
        let g = diamond();
        let w = [1.0, 2.0, 5.0, 1.0];
        let est = earliest_starts(&g, &w);
        assert_eq!(est, vec![0.0, 1.0, 1.0, 6.0]);
    }

    #[test]
    fn critical_path_picks_heavy_branch() {
        let g = diamond();
        let w = [1.0, 2.0, 5.0, 1.0];
        let cp = critical_path(&g, &w);
        assert!((cp.length - 7.0).abs() < 1e-12);
        assert_eq!(cp.nodes, vec![0, 2, 3]);
        assert!((critical_path_length(&g, &w) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_of_empty_and_single() {
        let cp = critical_path(&Dag::new(0), &[]);
        assert_eq!(cp.length, 0.0);
        assert!(cp.nodes.is_empty());

        let cp = critical_path(&Dag::new(1), &[3.5]);
        assert!((cp.length - 3.5).abs() < 1e-12);
        assert_eq!(cp.nodes, vec![0]);
    }

    #[test]
    fn critical_path_on_independent_tasks() {
        let g = Dag::new(3);
        let w = [2.0, 9.0, 4.0];
        let cp = critical_path(&g, &w);
        assert!((cp.length - 9.0).abs() < 1e-12);
        assert_eq!(cp.nodes, vec![1]);
    }

    #[test]
    fn latest_starts_and_slack() {
        let g = diamond();
        let w = [1.0, 2.0, 5.0, 1.0];
        let horizon = critical_path_length(&g, &w); // 7
        let est = earliest_starts(&g, &w);
        let lst = latest_starts(&g, &w, horizon);
        // Critical nodes 0,2,3 have zero slack; node 1 has slack 3.
        assert!((lst[0] - est[0]).abs() < 1e-12);
        assert!((lst[2] - est[2]).abs() < 1e-12);
        assert!((lst[3] - est[3]).abs() < 1e-12);
        assert!((lst[1] - est[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bottom_levels_diamond() {
        let g = diamond();
        let w = [1.0, 2.0, 5.0, 1.0];
        let bl = bottom_levels(&g, &w);
        assert_eq!(bl, vec![7.0, 3.0, 6.0, 1.0]);
    }

    #[test]
    fn path_length_matches_path_nodes_weight() {
        let g = Dag::from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let w = [3.0, 1.0, 2.0, 4.0, 6.0, 1.0];
        let cp = critical_path(&g, &w);
        let sum: f64 = cp.nodes.iter().map(|&v| w[v]).sum();
        assert!((sum - cp.length).abs() < 1e-9);
        // Path must follow arcs.
        for pair in cp.nodes.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn wrong_weight_length_panics() {
        earliest_starts(&diamond(), &[1.0, 2.0]);
    }
}
