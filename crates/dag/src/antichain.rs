//! Exact DAG width via Dilworth's theorem.
//!
//! The *width* of a DAG — the maximum number of pairwise incomparable
//! tasks — is the best possible degree of task parallelism and a natural
//! workload descriptor for the experiments. By Dilworth's theorem the
//! width equals the minimum number of chains covering the poset, and by
//! the Fulkerson construction that minimum is `n − M`, where `M` is a
//! maximum matching in the bipartite graph with an edge `(u, v)` for every
//! pair `u < v` in the transitive closure.
//!
//! Matching is computed with Kuhn's augmenting-path algorithm — `O(n·E)`
//! on the closure, adequate for the instance sizes used here (the layered
//! lower bound in [`crate::stats`] stays the cheap default).

use crate::graph::{Dag, NodeId};

/// Maximum-cardinality bipartite matching by repeated augmenting paths.
/// `adj[u]` lists right-side partners of left vertex `u`.
fn kuhn_matching(adj: &[Vec<usize>], n_right: usize) -> Vec<Option<usize>> {
    let n_left = adj.len();
    // match_right[v] = left vertex matched to right vertex v.
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut visited = vec![u32::MAX; n_right];

    fn try_augment(
        u: usize,
        adj: &[Vec<usize>],
        match_right: &mut [Option<usize>],
        visited: &mut [u32],
        stamp: u32,
    ) -> bool {
        for &v in &adj[u] {
            if visited[v] == stamp {
                continue;
            }
            visited[v] = stamp;
            match match_right[v] {
                None => {
                    match_right[v] = Some(u);
                    return true;
                }
                Some(w) => {
                    if try_augment(w, adj, match_right, visited, stamp) {
                        match_right[v] = Some(u);
                        return true;
                    }
                }
            }
        }
        false
    }

    for u in 0..n_left {
        try_augment(u, adj, &mut match_right, &mut visited, u as u32);
    }
    match_right
}

/// The exact width (maximum antichain size) of the DAG. `O(n·E_closure)`.
pub fn width(g: &Dag) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    let closure = g.transitive_closure();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| (0..n).filter(|&v| closure[u][v]).collect())
        .collect();
    let matched = kuhn_matching(&adj, n)
        .iter()
        .filter(|m| m.is_some())
        .count();
    n - matched
}

/// A minimum chain cover: partitions the nodes into exactly [`width`]
/// chains (paths in the *transitive closure*; consecutive chain elements
/// are comparable, not necessarily adjacent in `g`). Dilworth's theorem
/// makes this the dual witness to [`maximum_antichain`].
#[allow(clippy::needless_range_loop)] // node ids pair several arrays
pub fn minimum_chain_cover(g: &Dag) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let closure = g.transitive_closure();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| (0..n).filter(|&v| closure[u][v]).collect())
        .collect();
    let match_right = kuhn_matching(&adj, n);
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for (v, m) in match_right.iter().enumerate() {
        if let Some(u) = *m {
            next[u] = Some(v);
            has_pred[v] = true;
        }
    }
    let mut chains = Vec::new();
    for s in 0..n {
        if !has_pred[s] {
            let mut chain = vec![s];
            let mut cur = s;
            while let Some(nx) = next[cur] {
                chain.push(nx);
                cur = nx;
            }
            chains.push(chain);
        }
    }
    chains
}

/// A maximum antichain (a witness for [`width`]).
///
/// Uses the König construction on the closure's bipartite graph: with a
/// maximum matching `M`, let `Z` be the vertices reachable from unmatched
/// left copies by alternating paths; the minimum vertex cover is
/// `(L \ Z) ∪ (R ∩ Z)`, and the nodes with *both* copies outside the
/// cover — `x_out ∈ Z` and `x_in ∉ Z` — form an antichain of size
/// `n − |M|`, which is maximum by Dilworth's theorem.
pub fn maximum_antichain(g: &Dag) -> Vec<NodeId> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let closure = g.transitive_closure();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| (0..n).filter(|&v| closure[u][v]).collect())
        .collect();
    let match_right = kuhn_matching(&adj, n);
    let mut match_left: Vec<Option<usize>> = vec![None; n];
    for (v, m) in match_right.iter().enumerate() {
        if let Some(u) = *m {
            match_left[u] = Some(v);
        }
    }
    // Alternating BFS from unmatched left copies.
    let mut z_left = vec![false; n];
    let mut z_right = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n)
        .filter(|&u| match_left[u].is_none())
        .inspect(|&u| z_left[u] = true)
        .collect();
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if z_right[v] || match_left[u] == Some(v) {
                continue; // only non-matching edges leave the left side
            }
            z_right[v] = true;
            if let Some(w) = match_right[v] {
                if !z_left[w] {
                    z_left[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    (0..n).filter(|&x| z_left[x] && !z_right[x]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn is_antichain(g: &Dag, set: &[NodeId]) -> bool {
        let closure = g.transitive_closure();
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || closure[a][b] || closure[b][a] {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn width_of_basic_shapes() {
        assert_eq!(width(&generate::chain(7)), 1);
        assert_eq!(width(&generate::independent(9)), 9);
        assert_eq!(width(&Dag::new(0)), 0);
        // diamond: width 2 (the two middle nodes)
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(width(&d), 2);
        // fork-join with width w: exactly w
        assert_eq!(width(&generate::fork_join(5, 3)), 5);
        // out-tree of depth 3, arity 2: the 4 leaves
        assert_eq!(width(&generate::out_tree(2, 3)), 4);
    }

    #[test]
    fn width_of_wavefront_is_diagonal() {
        // rows x cols grid ordered by (<=, <=): max antichain = min(r, c)
        // ... in the *component order* it is an antidiagonal.
        assert_eq!(width(&generate::wavefront(3, 4)), 3);
        assert_eq!(width(&generate::wavefront(5, 2)), 2);
    }

    #[test]
    fn width_at_least_layer_bound() {
        for seed in 0..5 {
            let g = generate::layered_random(5, (2, 5), 0.3, seed);
            let layer_bound = crate::topo::layers(&g)
                .iter()
                .map(Vec::len)
                .max()
                .unwrap_or(0);
            let w = width(&g);
            assert!(
                w >= layer_bound,
                "seed {seed}: width {w} < layer bound {layer_bound}"
            );
            assert!(w <= g.node_count());
        }
    }

    #[test]
    fn witness_is_an_antichain_of_width_size() {
        for seed in 0..8 {
            let g = generate::random_order_dag(18, 0.2, seed);
            let w = width(&g);
            let ac = maximum_antichain(&g);
            assert!(is_antichain(&g, &ac), "seed {seed}: not an antichain");
            assert_eq!(ac.len(), w, "seed {seed}: witness size != width");
        }
    }

    #[test]
    fn witness_on_structured_graphs() {
        for g in [
            generate::chain(5),
            generate::independent(6),
            generate::fork_join(4, 2),
            generate::cholesky(4),
            generate::wavefront(4, 4),
        ] {
            let ac = maximum_antichain(&g);
            assert!(is_antichain(&g, &ac));
            assert_eq!(ac.len(), width(&g));
        }
    }

    #[test]
    fn chain_cover_partitions_into_width_chains() {
        for seed in 0..6 {
            let g = generate::random_order_dag(16, 0.25, seed);
            let closure = g.transitive_closure();
            let chains = minimum_chain_cover(&g);
            assert_eq!(chains.len(), width(&g), "seed {seed}: Dilworth duality");
            // Partition: every node exactly once.
            let mut seen = vec![false; g.node_count()];
            for chain in &chains {
                for &v in chain {
                    assert!(!seen[v], "seed {seed}: node {v} covered twice");
                    seen[v] = true;
                }
                // Chain elements are pairwise comparable in order.
                for w in chain.windows(2) {
                    assert!(closure[w[0]][w[1]], "seed {seed}: not a chain");
                }
            }
            assert!(seen.iter().all(|&s| s), "seed {seed}: node uncovered");
        }
    }

    #[test]
    fn chain_cover_of_shapes() {
        assert_eq!(minimum_chain_cover(&generate::chain(5)).len(), 1);
        assert_eq!(minimum_chain_cover(&generate::independent(4)).len(), 4);
        assert_eq!(minimum_chain_cover(&Dag::new(0)).len(), 0);
        let fj = generate::fork_join(3, 2);
        assert_eq!(minimum_chain_cover(&fj).len(), 3);
    }

    #[test]
    fn dense_total_order_has_width_one() {
        let g = generate::random_order_dag(10, 1.0, 3);
        assert_eq!(width(&g), 1);
        assert_eq!(maximum_antichain(&g).len(), 1);
    }
}
