//! Property tests for the write-ahead journal's recovery semantics.
//!
//! The WAL reuses the `mtsp-session v1` event-log format with two
//! liberties: the `events <k>` header count goes stale under appends
//! (the reader ignores it), and a torn final record — the signature of a
//! crash mid-`write` — is truncated instead of failing recovery. These
//! properties pin both over random event logs:
//!
//! * **Prefix + suffix = whole**: compacting a journal at *any* event
//!   boundary and appending the remaining records recovers the same log
//!   as writing it in one piece — so compaction can race a crash at any
//!   point without changing what recovery sees.
//! * **Torn tail is invisible**: chopping the journal anywhere inside
//!   its final record recovers exactly the log without that record,
//!   flagged torn — even when the chopped bytes parse as a valid,
//!   shorter record.
//! * **Writer/reader round-trip**: a journal produced by the real
//!   [`Wal`] writer (create + appends, any fsync policy) scans back as
//!   the event sequence that was appended.

use mtsp_model::wire::{write_session_event, write_session_log, SessionEvent, SessionLog};
use mtsp_serve::wal::{self, recover_session_log, Wal};
use proptest::prelude::*;

/// Deterministically decodes one event from a `(kind, a, b, raw)` pick.
/// Times are made strictly increasing by the caller via the event index.
fn decode_event(kind: usize, t: f64, a: usize, b: usize, m: usize) -> SessionEvent {
    match kind % 6 {
        0 => SessionEvent::Arrive {
            t,
            // Any positive, finite profile round-trips through the
            // journal; admissibility (A1/A2) is a session concern, not a
            // journal one.
            times: (1..=m).map(|l| 1.0 + (a + l) as f64 / 4.0).collect(),
        },
        1 => SessionEvent::Edge {
            t,
            pred: a % 8,
            succ: 8 + b % 8,
        },
        2 => SessionEvent::Machines { t, m },
        3 => SessionEvent::Start { t, task: a % 16 },
        4 => SessionEvent::Finish { t, task: b % 16 },
        _ => SessionEvent::Replan { t },
    }
}

fn random_log(m: usize, picks: &[(usize, usize, usize)]) -> SessionLog {
    let events = picks
        .iter()
        .enumerate()
        .map(|(i, &(kind, a, b))| decode_event(kind, i as f64 * 0.5, a, b, m))
        .collect();
    SessionLog { m, events }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_plus_suffix_recovers_the_whole_log(
        m in 1usize..=6,
        picks in proptest::collection::vec((0usize..6, 0usize..32, 0usize..32), 12),
        split in 0usize..=12,
    ) {
        let log = random_log(m, &picks);
        let split = split.min(log.events.len());
        let whole = recover_session_log(&write_session_log(&log)).unwrap();
        prop_assert!(!whole.1, "clean journal must not read as torn");
        prop_assert_eq!(&whole.0.events, &log.events);

        // Compact at `split`, then append the rest as the shard would:
        // the header's event count goes stale and must be ignored.
        let prefix = SessionLog {
            m,
            events: log.events[..split].to_vec(),
        };
        let mut text = write_session_log(&prefix);
        for ev in &log.events[split..] {
            text.push_str(&write_session_event(ev));
            text.push('\n');
        }
        let (recovered, torn) = recover_session_log(&text).unwrap();
        prop_assert!(!torn);
        prop_assert_eq!(recovered.events, log.events);
        prop_assert_eq!(recovered.m, m);
    }

    #[test]
    fn torn_tail_recovers_the_log_without_its_last_record(
        m in 1usize..=6,
        picks in proptest::collection::vec((0usize..6, 0usize..32, 0usize..32), 1..=10),
        chop in 0usize..200,
    ) {
        let log = random_log(m, &picks);
        let all_but_last = SessionLog {
            m,
            events: log.events[..log.events.len() - 1].to_vec(),
        };
        let mut text = write_session_log(&all_but_last);
        let last_line = write_session_event(log.events.last().unwrap());
        // Tear anywhere strictly inside the final record (keeping at
        // least one byte, losing at least the newline).
        let keep = 1 + chop % last_line.len();
        text.push_str(&last_line[..keep]);

        let (recovered, torn) = recover_session_log(&text).unwrap();
        prop_assert!(torn, "a missing trailing newline must read as torn");
        prop_assert_eq!(recovered.events, all_but_last.events);
    }

    #[test]
    fn wal_writer_scans_back_exactly(
        m in 1usize..=4,
        picks in proptest::collection::vec((0usize..6, 0usize..32, 0usize..32), 0..=8),
        fsync_pick in 0usize..3,
    ) {
        use mtsp_serve::FsyncPolicy;
        let fsync = [FsyncPolicy::Always, FsyncPolicy::Interval, FsyncPolicy::Never]
            [fsync_pick % 3];
        let dir = std::env::temp_dir().join(format!(
            "mtsp-wal-props-{}-{m}-{}-{fsync_pick}",
            std::process::id(),
            picks.len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let log = random_log(m, &picks);
        let mut w = Wal::new(&dir, fsync).unwrap();
        w.create("acme", "s1", m).unwrap();
        for ev in &log.events {
            w.append("acme", "s1", ev).unwrap();
        }
        drop(w);

        let scanned = wal::scan(&dir);
        prop_assert_eq!(scanned.len(), 1);
        prop_assert_eq!(&scanned[0].tenant, "acme");
        prop_assert_eq!(&scanned[0].session, "s1");
        prop_assert!(!scanned[0].torn);
        prop_assert_eq!(&scanned[0].log.events, &log.events);
        prop_assert_eq!(scanned[0].log.m, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
