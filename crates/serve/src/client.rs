//! A scripted wire client: sends `mtsp-wire v1` request lines, collects
//! the reply stream, and captures snapshot bodies for `--snapshot-out`.
//!
//! The client mirrors the daemon's framing rules: it parses each script
//! line to learn how many body lines to send with it, and parses each
//! reply line to learn how many body lines to read back. Unparseable
//! script lines are sent anyway (the daemon answers with a structured
//! `ERR`), so error paths can be exercised from a plain script file.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use mtsp_model::wire::{parse_request, parse_response, Response};

/// Everything one scripted client run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// The full reply stream: every response line plus body, in order.
    pub transcript: String,
    /// The body of the last `OK SNAPSHOT` reply, if any.
    pub last_snapshot: Option<String>,
}

/// Drives `script` over an established connection (`reader`/`writer`
/// must be two handles on the same stream).
pub fn run_script_io<R: BufRead, W: Write>(
    mut reader: R,
    mut writer: W,
    script: &str,
) -> io::Result<ClientOutcome> {
    let mut transcript = String::new();
    let mut last_snapshot = None;
    let mut lines = script.lines().peekable();
    let mut reply_no = 0usize;
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue; // the daemon skips these without replying
        }
        // Forward declared body lines verbatim before expecting a reply.
        if let Ok(req) = parse_request(trimmed, 0) {
            for _ in 0..req.body_lines() {
                let Some(body_line) = lines.next() else { break };
                writer.write_all(body_line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
        }
        writer.flush()?;
        // One reply per effective request line.
        let mut reply_line = String::new();
        if reader.read_line(&mut reply_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            ));
        }
        reply_no += 1;
        transcript.push_str(&reply_line);
        let resp = parse_response(reply_line.trim_end(), reply_no)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut body = String::new();
        for _ in 0..resp.body_lines() {
            let mut body_line = String::new();
            if reader.read_line(&mut body_line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside reply body",
                ));
            }
            body.push_str(&body_line);
        }
        transcript.push_str(&body);
        if matches!(resp, Response::SnapshotOk { .. }) {
            last_snapshot = Some(body);
        }
    }
    Ok(ClientOutcome {
        transcript,
        last_snapshot,
    })
}

/// Connects to a Unix socket and drives `script`.
pub fn run_script_unix(path: &Path, script: &str) -> io::Result<ClientOutcome> {
    let stream = std::os::unix::net::UnixStream::connect(path)?;
    let reader = BufReader::new(stream.try_clone()?);
    run_script_io(reader, stream, script)
}

/// Connects to a TCP address and drives `script`.
pub fn run_script_tcp(addr: &str, script: &str) -> io::Result<ClientOutcome> {
    let stream = std::net::TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    run_script_io(reader, stream, script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::serve_unix;
    use crate::registry::{Registry, ServeConfig};
    use std::sync::Arc;

    #[test]
    fn client_and_daemon_speak_over_a_unix_socket() {
        let dir = std::env::temp_dir().join(format!("mtsp-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("daemon.sock");
        let reg = Arc::new(
            Registry::new(ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            })
            .unwrap(),
        );
        {
            let reg = Arc::clone(&reg);
            let sock = sock.clone();
            std::thread::spawn(move || {
                let _ = serve_unix(reg, &sock);
            });
        }
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let script = "\
OPEN acme s1 2
ARRIVE acme s1 0.0 2.0 1.0
REPLAN acme s1 0.0
SNAPSHOT acme s1
CLOSE acme s1
";
        let out = run_script_unix(&sock, script).unwrap();
        assert!(
            out.transcript.starts_with("OK OPEN s1\n"),
            "{}",
            out.transcript
        );
        assert!(out.transcript.contains("OK CLOSE 2"), "{}", out.transcript);
        let snap = out.last_snapshot.expect("snapshot captured");
        mtsp_model::wire::parse_session_log(&snap).unwrap();
        // A second client connection sees its own line numbering.
        let err_out = run_script_unix(&sock, "REPLAN acme gone 0.0\n").unwrap();
        assert!(
            err_out.transcript.starts_with("ERR 1 no-session"),
            "{}",
            err_out.transcript
        );
        std::fs::remove_file(&sock).ok();
    }
}
