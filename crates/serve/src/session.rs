//! One served session: a [`ScheduleSession`] plus its event log, replan
//! quota bucket, and the snapshot/restore machinery.
//!
//! The event log is the session's *whole* state: plans are pure
//! functions of the event history, so serializing the log
//! (`mtsp-session v1`) and replaying it through a fresh session
//! reproduces every planned allotment bit-exactly — including frozen
//! allotments, because `replan`/`start` events are part of the log.

use mtsp_engine::{ScheduleSession, SessionConfig, TaskState};
use mtsp_lp::SolveContext;
use mtsp_model::wire::{write_session_log, ErrCode, Response, SessionEvent, SessionLog};
use mtsp_model::Profile;

use crate::quota::{Quotas, ReplanBucket};

/// A live session owned by one shard worker.
#[derive(Debug)]
pub struct ServedSession {
    inner: ScheduleSession,
    log: Vec<SessionEvent>,
    bucket: ReplanBucket,
    /// Profile-domain machine count the session was opened with.
    m: usize,
}

/// Outcome of applying one request to a session: the wire reply, built
/// with the input line number `line` on the error path.
type Applied = Result<Response, (ErrCode, String)>;

fn finish(line: usize, applied: Applied) -> Response {
    match applied {
        Ok(resp) => resp,
        Err((code, msg)) => Response::error(line, code, msg),
    }
}

impl ServedSession {
    /// Opens a fresh session on `m` machines.
    pub fn open(m: usize, cfg: SessionConfig, quotas: &Quotas) -> Result<Self, String> {
        let inner = ScheduleSession::new(m, cfg).map_err(|e| e.to_string())?;
        Ok(ServedSession {
            inner,
            log: Vec::new(),
            bucket: ReplanBucket::new(quotas.max_replans_per_sec),
            m,
        })
    }

    /// Rebuilds a session from a snapshot log by replaying every event
    /// through a fresh [`ScheduleSession`] (replans run on `ctx`). The
    /// log is trusted state, so quota limits are *not* re-enforced on
    /// replay — but the quota bucket is driven through the same
    /// trajectory, so post-restore quota decisions match a session that
    /// never crashed. Fails with a message naming the offending event if
    /// the log is not a valid history.
    pub fn restore(
        log: SessionLog,
        cfg: SessionConfig,
        quotas: &Quotas,
        ctx: &mut SolveContext,
    ) -> Result<Self, String> {
        let mut inner = ScheduleSession::new(log.m, cfg).map_err(|e| e.to_string())?;
        let mut bucket = ReplanBucket::new(quotas.max_replans_per_sec);
        for (i, ev) in log.events.iter().enumerate() {
            let res = match ev {
                SessionEvent::Arrive { t, times } => Profile::from_times(times.clone())
                    .map_err(|e| e.to_string())
                    .and_then(|p| inner.arrive(p, *t).map(|_| ()).map_err(|e| e.to_string())),
                SessionEvent::Edge { t, pred, succ } => inner
                    .add_dependency(*pred, *succ, *t)
                    .map_err(|e| e.to_string()),
                SessionEvent::Machines { t, m } => {
                    inner.set_machines(*m, *t).map_err(|e| e.to_string())
                }
                SessionEvent::Start { t, task } => inner
                    .mark_started(*task, *t)
                    .map(|_| ())
                    .map_err(|e| e.to_string()),
                SessionEvent::Finish { t, task } => {
                    inner.mark_finished(*task, *t).map_err(|e| e.to_string())
                }
                SessionEvent::Replan { t } => {
                    let _ = bucket.admit(*t);
                    inner
                        .replan_in(ctx, *t)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                }
            };
            res.map_err(|e| format!("snapshot replay failed at event {}: {e}", i + 1))?;
        }
        let m = log.m;
        Ok(ServedSession {
            inner,
            log: log.events,
            bucket,
            m,
        })
    }

    /// Number of events the session has absorbed.
    pub fn events(&self) -> usize {
        self.log.len()
    }

    /// The most recently logged event — the record the shard worker
    /// journals after a successful mutation.
    pub fn last_event(&self) -> Option<&SessionEvent> {
        self.log.last()
    }

    /// The session's state as a [`SessionLog`] value (snapshot bodies
    /// and journal compaction both render exactly this).
    pub fn to_log(&self) -> SessionLog {
        SessionLog {
            m: self.m,
            events: self.log.clone(),
        }
    }

    /// Renders the `mtsp-session v1` snapshot body.
    pub fn snapshot(&self) -> String {
        write_session_log(&self.to_log())
    }

    /// Applies `ARRIVE`: quota-checks the task budget, admits the
    /// profile, logs the event.
    pub fn arrive(&mut self, t: f64, times: &[f64], line: usize, quotas: &Quotas) -> Response {
        finish(line, self.try_arrive(t, times, quotas))
    }

    fn try_arrive(&mut self, t: f64, times: &[f64], quotas: &Quotas) -> Applied {
        if quotas.max_tasks > 0 && self.inner.n() >= quotas.max_tasks {
            return Err((
                ErrCode::Quota,
                format!("session exceeds max tasks ({})", quotas.max_tasks),
            ));
        }
        let profile =
            Profile::from_times(times.to_vec()).map_err(|e| (ErrCode::Session, e.to_string()))?;
        let task = self
            .inner
            .arrive(profile, t)
            .map_err(|e| (ErrCode::Session, e.to_string()))?;
        self.log.push(SessionEvent::Arrive {
            t,
            times: times.to_vec(),
        });
        Ok(Response::ArriveOk { task })
    }

    /// Applies `EDGE`.
    pub fn edge(&mut self, t: f64, pred: usize, succ: usize, line: usize) -> Response {
        finish(
            line,
            self.inner
                .add_dependency(pred, succ, t)
                .map_err(|e| (ErrCode::Session, e.to_string()))
                .map(|()| {
                    self.log.push(SessionEvent::Edge { t, pred, succ });
                    Response::EdgeOk
                }),
        )
    }

    /// Applies `MACHINES`.
    pub fn machines(&mut self, t: f64, m: usize, line: usize) -> Response {
        finish(
            line,
            self.inner
                .set_machines(m, t)
                .map_err(|e| (ErrCode::Session, e.to_string()))
                .map(|()| {
                    self.log.push(SessionEvent::Machines { t, m });
                    Response::MachinesOk { m }
                }),
        )
    }

    /// Applies `START`.
    pub fn start(&mut self, t: f64, task: usize, line: usize) -> Response {
        finish(
            line,
            self.inner
                .mark_started(task, t)
                .map_err(|e| (ErrCode::Session, e.to_string()))
                .map(|alloc| {
                    self.log.push(SessionEvent::Start { t, task });
                    Response::StartOk { task, alloc }
                }),
        )
    }

    /// Applies `FINISH`.
    pub fn mark_finished(&mut self, t: f64, task: usize, line: usize) -> Response {
        finish(
            line,
            self.inner
                .mark_finished(task, t)
                .map_err(|e| (ErrCode::Session, e.to_string()))
                .map(|()| {
                    self.log.push(SessionEvent::Finish { t, task });
                    Response::FinishOk { task }
                }),
        )
    }

    /// Applies `REPLAN`: quota-checks the replan rate, re-plans the
    /// pending suffix on `ctx`, returns the epoch summary.
    pub fn replan(&mut self, t: f64, line: usize, ctx: &mut SolveContext) -> Response {
        finish(line, self.try_replan(t, ctx))
    }

    fn try_replan(&mut self, t: f64, ctx: &mut SolveContext) -> Applied {
        if !self.bucket.admit(t) {
            return Err((
                ErrCode::Quota,
                format!("session exceeds max replans/sec at t={t:?}"),
            ));
        }
        let epoch = self
            .inner
            .replan_in(ctx, t)
            .map_err(|e| (ErrCode::Session, e.to_string()))?;
        let (pending, cstar) = (epoch.pending, epoch.cstar);
        self.log.push(SessionEvent::Replan { t });
        let alloc: Vec<(usize, usize)> = (0..self.inner.n())
            .filter(|&j| matches!(self.inner.task_state(j), Ok(TaskState::Pending)))
            .filter_map(|j| self.inner.planned_alloc(j).map(|a| (j, a)))
            .collect();
        Ok(Response::ReplanOk {
            pending,
            cstar,
            alloc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_model::wire::parse_session_log;

    fn unlimited() -> Quotas {
        Quotas::unlimited()
    }

    fn scripted_session(q: &Quotas) -> (ServedSession, SolveContext) {
        let mut ctx = SolveContext::new();
        let mut s = ServedSession::open(4, SessionConfig::new(), q).unwrap();
        let p0 = [8.0, 4.0, 8.0 / 3.0, 2.0];
        let p1 = [6.0, 3.25, 2.5, 2.25];
        assert_eq!(s.arrive(0.0, &p0, 1, q), Response::ArriveOk { task: 0 });
        assert_eq!(s.arrive(0.0, &p1, 2, q), Response::ArriveOk { task: 1 });
        assert_eq!(s.edge(0.0, 0, 1, 3), Response::EdgeOk);
        let r = s.replan(0.0, 4, &mut ctx);
        assert!(matches!(r, Response::ReplanOk { pending: 2, .. }), "{r:?}");
        (s, ctx)
    }

    #[test]
    fn snapshot_restore_reproduces_the_plan_bit_exactly() {
        let q = unlimited();
        let (mut s, mut ctx) = scripted_session(&q);
        let Response::StartOk { alloc, .. } = s.start(0.5, 0, 5) else {
            panic!("start failed");
        };
        let snap = s.snapshot();
        // Continue the original: finish 0, replan at 2.0.
        let resp_orig = {
            let r0 = s.mark_finished(2.0, 0, 6);
            assert_eq!(r0, Response::FinishOk { task: 0 });
            s.replan(2.0, 7, &mut ctx)
        };
        // Restore from the snapshot in a "new process" (fresh context),
        // apply the same tail.
        let mut ctx2 = SolveContext::new();
        let log = parse_session_log(&snap).unwrap();
        let mut s2 = ServedSession::restore(log, SessionConfig::new(), &q, &mut ctx2).unwrap();
        let r0 = s2.mark_finished(2.0, 0, 6);
        assert_eq!(r0, Response::FinishOk { task: 0 });
        let resp_restored = s2.replan(2.0, 7, &mut ctx2);
        assert_eq!(resp_orig, resp_restored, "restored replan must match");
        assert!(alloc >= 1);
        // Re-snapshotting the restored session after the same tail gives
        // the same bytes as snapshotting the original after its tail.
        assert_eq!(s2.snapshot(), s.snapshot());
    }

    #[test]
    fn replan_quota_rejects_deterministically() {
        let q = Quotas {
            max_replans_per_sec: 1.0,
            ..Quotas::unlimited()
        };
        let mut ctx = SolveContext::new();
        let mut s = ServedSession::open(2, SessionConfig::new(), &q).unwrap();
        s.arrive(0.0, &[2.0, 1.0], 1, &q);
        assert!(matches!(
            s.replan(0.0, 2, &mut ctx),
            Response::ReplanOk { .. }
        ));
        let rejected = s.replan(0.0, 3, &mut ctx);
        assert_eq!(
            rejected,
            Response::error(
                3,
                ErrCode::Quota,
                "session exceeds max replans/sec at t=0.0"
            )
        );
        assert!(
            matches!(s.replan(1.0, 4, &mut ctx), Response::ReplanOk { .. }),
            "token refilled by t=1"
        );
        // The rejected replan is NOT in the log.
        assert_eq!(
            s.events(),
            3,
            "arrive + two admitted replans, rejection unlogged"
        );
    }

    #[test]
    fn task_quota_rejects_arrivals() {
        let q = Quotas {
            max_tasks: 2,
            ..Quotas::unlimited()
        };
        let mut s = ServedSession::open(2, SessionConfig::new(), &q).unwrap();
        s.arrive(0.0, &[1.0, 0.5], 1, &q);
        s.arrive(0.0, &[1.0, 0.5], 2, &q);
        let r = s.arrive(0.0, &[1.0, 0.5], 3, &q);
        assert_eq!(
            r,
            Response::error(3, ErrCode::Quota, "session exceeds max tasks (2)")
        );
    }

    #[test]
    fn session_errors_map_to_session_code() {
        let q = unlimited();
        let (mut s, _ctx) = scripted_session(&q);
        // Time regression.
        let r = s.arrive(-1.0, &[1.0, 1.0, 1.0, 1.0], 9, &q);
        assert!(
            matches!(
                r,
                Response::Err {
                    line: 9,
                    code: ErrCode::Session,
                    ..
                }
            ),
            "{r:?}"
        );
        // Unknown task.
        let r = s.start(0.0, 99, 10);
        assert!(
            matches!(
                r,
                Response::Err {
                    line: 10,
                    code: ErrCode::Session,
                    ..
                }
            ),
            "{r:?}"
        );
    }
}
