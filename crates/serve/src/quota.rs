//! Per-tenant admission quotas.
//!
//! Three knobs, each with `0` (or `0.0`) meaning *unlimited*:
//!
//! * `max_sessions` — open sessions per tenant, enforced across every
//!   shard at `OPEN`/`RESTORE` time;
//! * `max_tasks` — tasks per session, enforced at `ARRIVE`;
//! * `max_replans_per_sec` — a token bucket over the session's **logical
//!   event clock** (not wall time), enforced at `REPLAN`.
//!
//! Rating replans by the logical clock keeps quota decisions
//! deterministic: the same request script always produces the same
//! accept/reject sequence, whatever the machine load — which is what
//! lets the byte-determinism contract cover quota `ERR` replies too.

/// Per-tenant quota configuration. `0` / `0.0` disables a limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quotas {
    /// Maximum concurrently open sessions per tenant.
    pub max_sessions: usize,
    /// Maximum tasks per session.
    pub max_tasks: usize,
    /// Sustained `REPLAN` rate per session, in events per logical-clock
    /// second (burst = `max(rate, 1)`).
    pub max_replans_per_sec: f64,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            max_sessions: 64,
            max_tasks: 100_000,
            max_replans_per_sec: 0.0,
        }
    }
}

impl Quotas {
    /// Fully unlimited quotas.
    pub fn unlimited() -> Self {
        Quotas {
            max_sessions: 0,
            max_tasks: 0,
            max_replans_per_sec: 0.0,
        }
    }
}

/// Deterministic token bucket over a session's logical event clock. The
/// bucket starts full; each admitted replan takes one token; tokens
/// refill at `rate` per logical second up to a burst of `max(rate, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct ReplanBucket {
    rate: f64,
    tokens: f64,
    last: f64,
}

impl ReplanBucket {
    /// A full bucket at logical time 0. `rate <= 0` disables limiting.
    pub fn new(rate: f64) -> Self {
        ReplanBucket {
            rate,
            tokens: rate.max(1.0),
            last: 0.0,
        }
    }

    /// Admits or rejects a replan at logical time `t`. Pure f64
    /// arithmetic over event times — replaying the same event sequence
    /// reproduces the same decisions bit-exactly.
    pub fn admit(&mut self, t: f64) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let burst = self.rate.max(1.0);
        self.tokens = (self.tokens + (t - self.last).max(0.0) * self.rate).min(burst);
        if t > self.last {
            self.last = t;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = ReplanBucket::new(0.0);
        for i in 0..100 {
            assert!(b.admit(0.001 * i as f64));
        }
    }

    #[test]
    fn bucket_enforces_sustained_rate() {
        // 2 replans per logical second, burst 2.
        let mut b = ReplanBucket::new(2.0);
        assert!(b.admit(0.0));
        assert!(b.admit(0.0), "burst of 2 at t=0");
        assert!(!b.admit(0.0), "third replan at t=0 rejected");
        assert!(!b.admit(0.25), "only half a token refilled");
        assert!(b.admit(0.75), "a full token accrued by t=0.75");
        // Long quiet period refills to burst, not beyond.
        assert!(b.admit(100.0));
        assert!(b.admit(100.0));
        assert!(!b.admit(100.0));
    }

    #[test]
    fn decisions_replay_identically() {
        let times = [0.0, 0.1, 0.4, 0.4, 1.0, 1.6, 1.6, 1.7, 5.0];
        let run = || -> Vec<bool> {
            let mut b = ReplanBucket::new(1.5);
            times.iter().map(|&t| b.admit(t)).collect()
        };
        assert_eq!(run(), run());
        assert!(run().contains(&false), "the script trips the limit");
    }
}
