//! Transports: the line-oriented connection loop, plus stdio, Unix- and
//! TCP-socket front ends over one shared [`Registry`].
//!
//! A connection is a stream of `mtsp-wire v1` request lines. The loop
//! counts every physical input line (blank and `#`-comment lines are
//! skipped but still numbered, so `ERR` line numbers always point into
//! the caller's actual input), reads declared body lines verbatim, and
//! writes each reply (line + body) before reading the next request —
//! per-connection FIFO, which makes the response stream a pure function
//! of the request stream.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;

use mtsp_model::wire::{parse_request, write_response, ErrCode, Response};

use crate::registry::Registry;

/// Serves one connection until EOF. Every reply is flushed before the
/// next request line is read.
pub fn serve_connection<R: BufRead, W: Write>(
    reg: &Registry,
    mut reader: R,
    mut writer: W,
) -> io::Result<()> {
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = match parse_request(trimmed, line_no) {
            Err(e) => {
                let msg = match &e {
                    mtsp_model::ModelError::Parse { msg, .. } => msg.clone(),
                    other => other.to_string(),
                };
                crate::registry::Reply {
                    response: Response::error(line_no, ErrCode::Parse, msg),
                    body: String::new(),
                }
            }
            Ok(req) => {
                let mut body = String::new();
                let mut truncated = false;
                for _ in 0..req.body_lines() {
                    let mut body_line = String::new();
                    if reader.read_line(&mut body_line)? == 0 {
                        truncated = true;
                        break;
                    }
                    line_no += 1;
                    if !body_line.ends_with('\n') {
                        body_line.push('\n');
                    }
                    body.push_str(&body_line);
                }
                if truncated {
                    crate::registry::Reply {
                        response: Response::error(
                            line_no,
                            ErrCode::Proto,
                            "unexpected EOF inside request body",
                        ),
                        body: String::new(),
                    }
                } else {
                    reg.dispatch(line_no - req.body_lines(), req, body)
                }
            }
        };
        writer.write_all(write_response(&reply.response).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.write_all(reply.body.as_bytes())?;
        writer.flush()?;
    }
}

/// Runs a whole request script through the registry in-process and
/// returns the full response stream (the deterministic transcript the
/// harness and the determinism tests compare byte-for-byte).
pub fn serve_script(reg: &Registry, script: &str) -> String {
    let mut out = Vec::new();
    // In-memory I/O cannot fail; should it ever, the transcript simply
    // ends at the failure point instead of aborting the caller.
    let _ = serve_connection(reg, io::Cursor::new(script.as_bytes()), &mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// Serves stdin/stdout until EOF — the `mtsp serve --stdio` transport.
pub fn serve_stdio(reg: &Registry) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(reg, stdin.lock(), stdout.lock())
}

/// Reclaims `path` for a fresh Unix listener, or explains why it can't.
///
/// The old behaviour — unconditional `remove_file` — would happily
/// delete a regular file the operator pointed at by mistake, or yank a
/// *live* daemon's socket out from under it (both daemons then appear
/// healthy while clients of the first hang forever). Now:
///
/// * nothing at `path` → fine, bind will create it;
/// * a non-socket at `path` → refuse with `AddrInUse`, never unlink;
/// * a socket at `path` → probe-connect: a live listener is an error,
///   only a dead (stale, e.g. left by `kill -9`) socket is unlinked.
fn reclaim_unix_socket(path: &Path) -> io::Result<()> {
    use std::os::unix::fs::FileTypeExt;
    let meta = match std::fs::symlink_metadata(path) {
        Ok(meta) => meta,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if !meta.file_type().is_socket() {
        return Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!(
                "{} exists and is not a socket; refusing to replace it",
                path.display()
            ),
        ));
    }
    match std::os::unix::net::UnixStream::connect(path) {
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!(
                "{} is a live socket (another daemon is serving it)",
                path.display()
            ),
        )),
        Err(_) => std::fs::remove_file(path),
    }
}

/// Binds a Unix socket and serves every connection on its own thread,
/// forever. A stale socket file left by a crashed daemon is reclaimed;
/// a live socket or a non-socket file at `path` is a bind error (see
/// [`reclaim_unix_socket`]).
pub fn serve_unix(reg: Arc<Registry>, path: &Path) -> io::Result<()> {
    reclaim_unix_socket(path)?;
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            // A clone failure (fd exhaustion) drops this one connection;
            // the accept loop and every other connection keep serving.
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let _ = serve_connection(&reg, BufReader::new(read_half), stream);
        });
    }
    Ok(())
}

/// Binds a TCP listener and serves every connection on its own thread,
/// forever.
pub fn serve_tcp(reg: Arc<Registry>, addr: &str) -> io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            // Same degradation as the Unix transport: a clone failure
            // costs one connection, never the daemon.
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let _ = serve_connection(&reg, BufReader::new(read_half), stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServeConfig;

    #[test]
    fn connection_loop_frames_bodies_and_numbers_errors() {
        let reg = Registry::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let script = "\
# a comment, still counted in line numbers

OPEN acme s1 2
ARRIVE acme s1 0.0 2.0 1.0
WOBBLE
REPLAN acme s1 0.0
SNAPSHOT acme s1
";
        let out = serve_script(&reg, script);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK OPEN s1");
        assert_eq!(lines[1], "OK ARRIVE 0");
        assert!(
            lines[2].starts_with("ERR 5 parse"),
            "comment+blank count toward line numbers: {}",
            lines[2]
        );
        assert!(lines[3].starts_with("OK REPLAN 1"));
        assert!(lines[4].starts_with("OK SNAPSHOT "));
        // The snapshot body round-trips through the session-log parser.
        let k: usize = lines[4].rsplit(' ').next().unwrap().parse().unwrap();
        let body: String = lines[5..5 + k].iter().map(|l| format!("{l}\n")).collect();
        let log = mtsp_model::wire::parse_session_log(&body).unwrap();
        assert_eq!(log.events.len(), 2, "arrive + replan");
        reg.shutdown();
    }

    #[test]
    fn truncated_body_yields_structured_err() {
        let reg = Registry::new(ServeConfig::default()).unwrap();
        let out = serve_script(&reg, "RESTORE acme s1 5\nmtsp-session v1\n");
        assert!(out.starts_with("ERR 2 proto unexpected EOF"), "{out}");
        reg.shutdown();
    }

    #[test]
    fn socket_reclaim_is_safe() {
        let dir = std::env::temp_dir().join(format!("mtsp-reclaim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Nothing at the path: fine.
        let fresh = dir.join("fresh.sock");
        assert!(reclaim_unix_socket(&fresh).is_ok());
        assert!(!fresh.exists(), "reclaim must not create anything");

        // A regular file is never unlinked.
        let file = dir.join("data.txt");
        std::fs::write(&file, b"precious").unwrap();
        let err = reclaim_unix_socket(&file).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert_eq!(std::fs::read(&file).unwrap(), b"precious");

        // A live socket is refused; the listener keeps working.
        let live = dir.join("live.sock");
        let listener = std::os::unix::net::UnixListener::bind(&live).unwrap();
        let err = reclaim_unix_socket(&live).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("live socket"), "{err}");
        drop(listener);

        // After the listener is gone the same file is stale: reclaimed.
        assert!(live.exists(), "socket file survives its listener");
        assert!(reclaim_unix_socket(&live).is_ok());
        assert!(!live.exists(), "stale socket unlinked");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
