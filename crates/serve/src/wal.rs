//! Per-session write-ahead journals: the daemon's durability layer.
//!
//! Every session journals to `<root>/<tenant>/<session>.log` in the
//! existing `mtsp-session v1` text format — the same bytes `SNAPSHOT`
//! emits, because the event log *is* the session state. The shard
//! worker appends each accepted mutating record **before** the OK reply
//! is written, so a reply the client has seen is a record the journal
//! holds (modulo the configured [`FsyncPolicy`] window). On startup the
//! registry [`scan`]s the root and replays every journal through
//! `ServedSession::restore`, resuming each session bit-exactly.
//!
//! Two format liberties make the snapshot grammar append-friendly:
//!
//! * The `events <k>` header count is written at journal creation (and
//!   refreshed by compaction) but **ignored by the journal reader**,
//!   which consumes records to end-of-file — appends never rewrite the
//!   header.
//! * A torn final record (a partial `write` persisted by a crash) is
//!   detected — missing trailing newline, or an unparsable last line —
//!   and truncated instead of poisoning recovery. Mid-file damage is
//!   real corruption and fails the journal.
//!
//! `SNAPSHOT` doubles as compaction: the journal is atomically
//! rewritten (temp file in the same directory + rename) to the exact
//! snapshot bytes, resynchronizing the header count and discarding any
//! previously truncated tail bytes.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use mtsp_model::wire::{
    parse_session_event, valid_name, write_session_event, write_session_log, SessionLog,
    SESSION_HEADER,
};

/// When journal appends are pushed to stable storage.
///
/// The policy bounds the *crash window* — how many acknowledged records
/// a power loss can lose. Process crashes (`kill -9`, panics) lose
/// nothing under any policy: the kernel still holds the written bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged record survives even
    /// power loss. The default, and the slowest.
    Always,
    /// `fsync` every [`FsyncPolicy::INTERVAL_APPENDS`] appends per
    /// journal (and always on compaction): bounded-loss middle ground.
    Interval,
    /// Never `fsync`: the OS flushes on its own schedule. Survives
    /// process crashes, not power loss.
    Never,
}

impl FsyncPolicy {
    /// Appends between syncs under [`FsyncPolicy::Interval`].
    pub const INTERVAL_APPENDS: usize = 32;

    /// Parses the CLI spelling (`always` / `interval` / `never`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::Interval),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The stable CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Interval => "interval",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One journal found by [`scan`]: its owner key, the recovered log, and
/// whether a torn final record was truncated to produce it.
#[derive(Debug, Clone)]
pub struct RecoveredSession {
    /// Tenant name (journal directory).
    pub tenant: String,
    /// Session name (journal file stem).
    pub session: String,
    /// The replayable event log, torn tail already dropped.
    pub log: SessionLog,
    /// `true` if a partial final record was truncated during recovery.
    pub torn: bool,
}

struct WalFile {
    file: File,
    /// Appends since the last `fsync` (drives [`FsyncPolicy::Interval`]).
    unsynced: usize,
}

/// Post-append sync bookkeeping for one journal handle.
fn sync_after_append(fsync: FsyncPolicy, wf: &mut WalFile) -> io::Result<()> {
    wf.unsynced += 1;
    let due = match fsync {
        FsyncPolicy::Always => true,
        FsyncPolicy::Interval => wf.unsynced >= FsyncPolicy::INTERVAL_APPENDS,
        FsyncPolicy::Never => false,
    };
    if due {
        wf.file.sync_data()?;
        wf.unsynced = 0;
    }
    Ok(())
}

/// One shard's journal writer: open append handles for the sessions it
/// owns, rooted at the shared journal directory. Shards never share a
/// session, so per-shard writers need no cross-shard coordination.
pub struct Wal {
    root: PathBuf,
    fsync: FsyncPolicy,
    files: BTreeMap<(String, String), WalFile>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("root", &self.root)
            .field("fsync", &self.fsync)
            .field("open_files", &self.files.len())
            .finish()
    }
}

impl Wal {
    /// A writer rooted at `root` (created if missing).
    pub fn new(root: &Path, fsync: FsyncPolicy) -> io::Result<Wal> {
        fs::create_dir_all(root)?;
        Ok(Wal {
            root: root.to_path_buf(),
            fsync,
            files: BTreeMap::new(),
        })
    }

    /// `<root>/<tenant>/<session>.log`. Names are validated wire tokens
    /// (`[A-Za-z0-9._-]`, no separators, not all dots), so the key
    /// cannot escape the root; the assertion is a backstop against any
    /// future path that skips [`valid_name`].
    pub fn path_of(&self, tenant: &str, session: &str) -> PathBuf {
        assert!(
            valid_name(tenant) && valid_name(session),
            "journal key {tenant:?}/{session:?} is not a validated wire token"
        );
        self.root.join(tenant).join(format!("{session}.log"))
    }

    /// Creates (truncating any stale leftover) the journal for a fresh
    /// session and writes its header block.
    pub fn create(&mut self, tenant: &str, session: &str, m: usize) -> io::Result<()> {
        let log = SessionLog { m, events: vec![] };
        self.write_full(tenant, session, &log)
    }

    /// Appends one event record. The record is a single `write` of one
    /// `\n`-terminated line, so a crash can tear at most the final
    /// record — exactly what [`recover_session_log`] truncates.
    pub fn append(
        &mut self,
        tenant: &str,
        session: &str,
        event: &mtsp_model::wire::SessionEvent,
    ) -> io::Result<()> {
        let path = self.path_of(tenant, session);
        let fsync = self.fsync;
        let wf = match self.files.entry((tenant.to_string(), session.to_string())) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                let file = OpenOptions::new().append(true).open(&path)?;
                v.insert(WalFile { file, unsynced: 0 })
            }
        };
        let mut line = write_session_event(event);
        line.push('\n');
        wf.file.write_all(line.as_bytes())?;
        sync_after_append(fsync, wf)
    }

    /// Atomically rewrites the journal to the full `mtsp-session v1`
    /// rendering of `log` (temp file + rename in the journal's own
    /// directory) and re-opens the append handle on the new file. Used
    /// for `SNAPSHOT` compaction, `RESTORE` journal creation, and
    /// post-recovery tail cleanup.
    pub fn write_full(&mut self, tenant: &str, session: &str, log: &SessionLog) -> io::Result<()> {
        let path = self.path_of(tenant, session);
        // `path_of` validated both names, so the parent directory is
        // exactly `<root>/<tenant>` — recompute it rather than unwrap
        // `path.parent()`.
        let dir = self.root.join(tenant);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!("{session}.log.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(write_session_log(log).as_bytes())?;
            if self.fsync != FsyncPolicy::Never {
                f.sync_data()?;
            }
        }
        fs::rename(&tmp, &path)?;
        if self.fsync != FsyncPolicy::Never {
            // Persist the rename itself; failure here only widens the
            // power-loss window, so a filesystem that refuses directory
            // fsync (some CI sandboxes) is tolerated.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let key = (tenant.to_string(), session.to_string());
        let file = OpenOptions::new().append(true).open(&path)?;
        self.files.insert(key, WalFile { file, unsynced: 0 });
        Ok(())
    }

    /// Drops the journal of a closed session.
    pub fn remove(&mut self, tenant: &str, session: &str) -> io::Result<()> {
        self.files
            .remove(&(tenant.to_string(), session.to_string()));
        match fs::remove_file(self.path_of(tenant, session)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Closes the append handle without touching the file (failure
    /// isolation: a failed session stops journaling but its journal
    /// stays on disk for the next recovery).
    pub fn detach(&mut self, tenant: &str, session: &str) {
        self.files
            .remove(&(tenant.to_string(), session.to_string()));
    }
}

/// Reads a journal leniently: the `events <k>` header count is ignored
/// (appends leave it stale) and a torn final record — missing trailing
/// newline, or an unparsable last line — is truncated. Damage anywhere
/// else is corruption and fails. Returns the replayable log and whether
/// a tail was truncated.
pub fn recover_session_log(text: &str) -> Result<(SessionLog, bool), String> {
    let mut torn = false;
    let mut body = text;
    if !body.is_empty() && !body.ends_with('\n') {
        // The final line never made it to disk whole; it may even be a
        // parsable prefix of the real record, so drop it unconditionally.
        torn = true;
        body = match body.rfind('\n') {
            Some(i) => &body[..i + 1],
            None => "",
        };
    }
    let lines: Vec<&str> = body.lines().collect();
    if lines.len() < 3 {
        return Err("journal truncated inside its header".into());
    }
    if lines[0] != SESSION_HEADER {
        return Err(format!(
            "expected header '{SESSION_HEADER}', got '{}'",
            lines[0]
        ));
    }
    let m = match lines[1].strip_prefix("m ") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("bad m value: {e}"))?,
        None => return Err(format!("expected 'm <count>', got '{}'", lines[1])),
    };
    if m == 0 {
        return Err("m must be at least 1".into());
    }
    if lines[2]
        .strip_prefix("events ")
        .and_then(|v| v.trim().parse::<usize>().ok())
        .is_none()
    {
        return Err(format!("expected 'events <count>', got '{}'", lines[2]));
    }
    let mut events = Vec::with_capacity(lines.len().saturating_sub(3));
    let last = lines.len() - 1;
    for (i, line) in lines.iter().enumerate().skip(3) {
        match parse_session_event(line, i + 1, m) {
            Ok(ev) => events.push(ev),
            Err(_) if i == last => {
                // A torn record that still ended in '\n' (short write of
                // a buffered line): truncate, same as the newline case.
                torn = true;
                break;
            }
            Err(e) => return Err(format!("corrupt journal record: {e}")),
        }
    }
    Ok((SessionLog { m, events }, torn))
}

/// Scans a journal root for `<tenant>/<session>.log` files and recovers
/// each, sorted by `(tenant, session)` so replay order (and therefore
/// every recovery-side counter) is deterministic. Unreadable or
/// mid-file-corrupt journals are skipped with a stderr warning — one
/// bad journal must not block the rest of the fleet from recovering.
pub fn scan(root: &Path) -> Vec<RecoveredSession> {
    let mut out = Vec::new();
    let Ok(tenants) = fs::read_dir(root) else {
        return out;
    };
    for tdir in tenants.flatten() {
        if !tdir.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            continue;
        }
        let tenant = tdir.file_name().to_string_lossy().into_owned();
        // Only directories that are valid wire tokens can hold journals
        // the daemon wrote; anything else is a stray no request could
        // ever address (it would pin tenant quota forever, unclosable).
        if !valid_name(&tenant) {
            eprintln!(
                "# mtsp serve: skipping journal directory {}: not a valid tenant name",
                tdir.path().display()
            );
            continue;
        }
        let Ok(sessions) = fs::read_dir(tdir.path()) else {
            continue;
        };
        for entry in sessions.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            // `.log` files only: leftover `.log.tmp` compaction files
            // from a crash mid-rename are stale by construction.
            let Some(session) = name.strip_suffix(".log") else {
                continue;
            };
            if !valid_name(session) {
                eprintln!(
                    "# mtsp serve: skipping journal {}: not a valid session name",
                    entry.path().display()
                );
                continue;
            }
            let path = entry.path();
            match fs::read_to_string(&path) {
                Ok(text) => match recover_session_log(&text) {
                    Ok((log, torn)) => out.push(RecoveredSession {
                        tenant: tenant.clone(),
                        session: session.to_string(),
                        log,
                        torn,
                    }),
                    Err(e) => {
                        eprintln!("# mtsp serve: skipping journal {}: {e}", path.display());
                    }
                },
                Err(e) => {
                    eprintln!("# mtsp serve: unreadable journal {}: {e}", path.display());
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (a.tenant.as_str(), a.session.as_str()).cmp(&(b.tenant.as_str(), b.session.as_str()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_model::wire::SessionEvent;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtsp-wal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_events() -> Vec<SessionEvent> {
        vec![
            SessionEvent::Arrive {
                t: 0.0,
                times: vec![4.0, 2.5],
            },
            SessionEvent::Arrive {
                t: 0.0,
                times: vec![3.0, 1.75],
            },
            SessionEvent::Edge {
                t: 0.0,
                pred: 0,
                succ: 1,
            },
            SessionEvent::Replan { t: 0.0 },
            SessionEvent::Start { t: 0.5, task: 0 },
            SessionEvent::Finish { t: 2.0, task: 0 },
        ]
    }

    #[test]
    fn create_append_scan_roundtrip() {
        let root = tmp_root("roundtrip");
        let mut wal = Wal::new(&root, FsyncPolicy::Never).unwrap();
        wal.create("acme", "s1", 2).unwrap();
        for ev in demo_events() {
            wal.append("acme", "s1", &ev).unwrap();
        }
        wal.create("zork", "s9", 3).unwrap();

        let found = scan(&root);
        assert_eq!(found.len(), 2);
        // Sorted by (tenant, session).
        assert_eq!(found[0].tenant, "acme");
        assert_eq!(found[1].tenant, "zork");
        assert_eq!(found[0].log.m, 2);
        assert_eq!(found[0].log.events, demo_events());
        assert!(!found[0].torn);
        assert_eq!(found[1].log.events.len(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let root = tmp_root("torn");
        let mut wal = Wal::new(&root, FsyncPolicy::Always).unwrap();
        wal.create("acme", "s1", 2).unwrap();
        for ev in demo_events() {
            wal.append("acme", "s1", &ev).unwrap();
        }
        // Simulate a crash mid-write: a partial record with no newline.
        // "edge 3.0 1" is a parsable-looking prefix of a longer record,
        // the nastiest torn shape.
        let path = wal.path_of("acme", "s1");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"edge 3.0 1").unwrap();
        drop(f);

        let found = scan(&root);
        assert_eq!(found.len(), 1);
        assert!(found[0].torn, "partial tail must be flagged");
        assert_eq!(found[0].log.events, demo_events(), "tail dropped exactly");

        // A torn record that did keep its newline but not its shape.
        fs::write(
            &path,
            "mtsp-session v1\nm 2\nevents 0\nreplan 0.0\narrive 1.0 2.0\n",
        )
        .unwrap();
        let found = scan(&root);
        assert!(found[0].torn);
        assert_eq!(found[0].log.events, vec![SessionEvent::Replan { t: 0.0 }]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    #[should_panic(expected = "not a validated wire token")]
    fn path_of_rejects_traversal_names() {
        let root = tmp_root("traversal");
        let wal = Wal::new(&root, FsyncPolicy::Never).unwrap();
        // '..' would resolve to a .log path outside the journal root.
        let _ = wal.path_of("..", "s1");
    }

    #[test]
    fn scan_skips_entries_with_invalid_names() {
        let root = tmp_root("invalid-names");
        let mut wal = Wal::new(&root, FsyncPolicy::Never).unwrap();
        wal.create("acme", "good", 2).unwrap();
        // Stray journals under names no wire request can ever address:
        // an all-dot tenant directory, a session stem with a space, and
        // an over-long stem. Recovering them would pin tenant quota on
        // sessions that can never be CLOSEd.
        let log = write_session_log(&SessionLog {
            m: 2,
            events: vec![],
        });
        fs::create_dir_all(root.join("...")).unwrap();
        fs::write(root.join("...").join("s1.log"), &log).unwrap();
        fs::write(root.join("acme").join("has space.log"), &log).unwrap();
        fs::write(
            root.join("acme").join(format!("{}.log", "x".repeat(65))),
            &log,
        )
        .unwrap();
        let found = scan(&root);
        assert_eq!(found.len(), 1, "only the addressable journal recovers");
        assert_eq!(found[0].session, "good");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mid_file_corruption_is_fatal_for_that_journal_only() {
        let root = tmp_root("corrupt");
        let mut wal = Wal::new(&root, FsyncPolicy::Never).unwrap();
        wal.create("acme", "bad", 2).unwrap();
        wal.create("acme", "good", 2).unwrap();
        wal.append("acme", "good", &SessionEvent::Replan { t: 0.0 })
            .unwrap();
        let path = wal.path_of("acme", "bad");
        fs::write(
            &path,
            "mtsp-session v1\nm 2\nevents 0\nwobble 0.0\nreplan 1.0\n",
        )
        .unwrap();
        let found = scan(&root);
        assert_eq!(found.len(), 1, "corrupt journal skipped, good one kept");
        assert_eq!(found[0].session, "good");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_rewrites_atomically_and_appends_continue() {
        let root = tmp_root("compact");
        let mut wal = Wal::new(&root, FsyncPolicy::Interval).unwrap();
        wal.create("acme", "s1", 2).unwrap();
        let evs = demo_events();
        for ev in &evs {
            wal.append("acme", "s1", ev).unwrap();
        }
        let log = SessionLog {
            m: 2,
            events: evs.clone(),
        };
        wal.write_full("acme", "s1", &log).unwrap();
        let text = fs::read_to_string(wal.path_of("acme", "s1")).unwrap();
        assert_eq!(
            text,
            write_session_log(&log),
            "compacted journal is byte-identical to the snapshot"
        );
        assert!(!root.join("acme").join("s1.log.tmp").exists());
        // Appends keep working on the renamed file.
        wal.append("acme", "s1", &SessionEvent::Replan { t: 3.0 })
            .unwrap();
        let (rec, torn) =
            recover_session_log(&fs::read_to_string(wal.path_of("acme", "s1")).unwrap()).unwrap();
        assert!(!torn);
        assert_eq!(rec.events.len(), evs.len() + 1);

        wal.remove("acme", "s1").unwrap();
        assert!(scan(&root).is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fsync_policy_parses_stable_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("interval"), Some(FsyncPolicy::Interval));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Interval,
            FsyncPolicy::Never,
        ] {
            assert_eq!(FsyncPolicy::parse(p.name()), Some(p));
        }
    }
}
