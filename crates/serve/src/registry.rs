//! The sharded session registry: N shard worker threads, each owning its
//! sessions, one warm [`SolveContext`], and one [`Engine`] front over a
//! **shared** content-addressed solve cache.
//!
//! A session lives on `hash(tenant, session) % shards` for its whole
//! life; requests are routed there over a *bounded* `sync_channel` whose
//! blocking `send` is the backpressure mechanism (a full shard queue
//! slows callers down instead of buffering without bound). Each request
//! carries its own reply channel, so a connection's requests are
//! answered strictly in order and the response stream is a pure function
//! of the request stream — byte-identical for any shard count, which the
//! harness and CI assert.

use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mtsp_engine::{Engine, EngineConfig, SessionConfig, SolveCache};
use mtsp_lp::SolveContext;
use mtsp_model::textio::parse_instance;
use mtsp_model::wire::{parse_session_log, ErrCode, Request, Response};
use mtsp_obs::{Counter, Counters, Gauge, GaugeSet};

use crate::quota::Quotas;
use crate::session::ServedSession;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (worker thread) count, `>= 1`.
    pub shards: usize,
    /// Bounded per-shard queue capacity; a full queue blocks senders.
    pub queue_cap: usize,
    /// Per-tenant quotas.
    pub quotas: Quotas,
    /// Session configuration applied to every opened session.
    pub session: SessionConfig,
    /// Engine configuration for one-shot `SOLVE` requests (the solve
    /// cache it describes is shared across all shards and tenants).
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_cap: 128,
            quotas: Quotas::default(),
            session: SessionConfig::new(),
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        }
    }
}

/// One wire reply: the response line plus its raw body (empty for most
/// replies; the `mtsp-session v1` text for `OK SNAPSHOT`, counter rows
/// for `OK STATS`). Body lines are `\n`-terminated.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The one-line response.
    pub response: Response,
    /// Raw body lines following the response line.
    pub body: String,
}

impl Reply {
    fn bare(response: Response) -> Reply {
        Reply {
            response,
            body: String::new(),
        }
    }
}

enum ShardMsg {
    Req {
        line: usize,
        req: Request,
        body: String,
        reply: SyncSender<Reply>,
    },
    Counters {
        reply: SyncSender<Counters>,
    },
}

/// The sharded registry. See the module docs.
pub struct Registry {
    txs: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    depth: Vec<Gauge>,
    gauges: GaugeSet,
    cache: Arc<SolveCache>,
}

/// 64-bit FNV-1a over the routing key; stable across runs and platforms.
fn shard_of(tenant: &str, session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([0u8]).chain(session.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

impl Registry {
    /// Spawns the shard workers. The engine cache is created once and
    /// shared by every shard via [`Engine::with_cache`].
    pub fn new(cfg: ServeConfig) -> Registry {
        let shards = cfg.shards.max(1);
        let queue_cap = cfg.queue_cap.max(1);
        let cache = Arc::new(SolveCache::with_capacity(
            cfg.engine.cache_shards,
            cfg.engine.cache_capacity,
        ));
        let tenants: Arc<Mutex<HashMap<String, usize>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut gauges = GaugeSet::new();
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(queue_cap);
            let gauge = gauges.register(&format!("serve.queue_depth.shard{i}"));
            let worker = ShardWorker {
                rx,
                gauge: gauge.clone(),
                tenants: Arc::clone(&tenants),
                quotas: cfg.quotas,
                session_cfg: cfg.session.clone(),
                engine: Engine::with_cache(cfg.engine.clone(), Arc::clone(&cache)),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mtsp-serve-shard{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker"),
            );
            txs.push(tx);
            depth.push(gauge);
        }
        Registry {
            txs,
            handles,
            depth,
            gauges,
            cache,
        }
    }

    /// Routes one request to its shard and blocks for the reply. `line`
    /// is the 1-based input line the request arrived on (echoed in `ERR`
    /// replies); `body` is the raw body for body-carrying requests.
    pub fn dispatch(&self, line: usize, req: Request, body: String) -> Reply {
        if matches!(req, Request::Stats) {
            return self.stats();
        }
        let shard = match (req.tenant(), req.session()) {
            (Some(t), Some(s)) => shard_of(t, s, self.txs.len()),
            (Some(t), None) => shard_of(t, "", self.txs.len()),
            _ => 0,
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.depth[shard].inc();
        self.txs[shard]
            .send(ShardMsg::Req {
                line,
                req,
                body,
                reply: reply_tx,
            })
            .expect("shard worker alive while registry exists");
        reply_rx.recv().expect("shard worker replies before drop")
    }

    /// Merged deterministic counters across every shard (order-independent
    /// sum, so totals are identical for any shard count).
    pub fn counters(&self) -> Counters {
        let mut total = Counters::new();
        for (shard, tx) in self.txs.iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            self.depth[shard].inc();
            tx.send(ShardMsg::Counters { reply: reply_tx })
                .expect("shard worker alive while registry exists");
            total.merge(&reply_rx.recv().expect("shard worker replies"));
        }
        total
    }

    fn stats(&self) -> Reply {
        let total = self.counters();
        let mut body = String::new();
        for (c, v) in total.iter() {
            body.push_str(c.name());
            body.push(' ');
            body.push_str(&v.to_string());
            body.push('\n');
        }
        Reply {
            response: Response::StatsOk {
                body_lines: Counter::ALL.len(),
            },
            body,
        }
    }

    /// Shared solve-cache statistics (hits/misses across all tenants).
    pub fn cache_stats(&self) -> mtsp_engine::CacheStats {
        self.cache.stats()
    }

    /// Renders the per-shard queue-depth gauges (non-deterministic;
    /// stderr material).
    pub fn render_gauges(&self) -> String {
        self.gauges.render()
    }

    /// Stops the shard workers and waits for them to drain.
    pub fn shutdown(mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct ShardWorker {
    rx: Receiver<ShardMsg>,
    gauge: Gauge,
    tenants: Arc<Mutex<HashMap<String, usize>>>,
    quotas: Quotas,
    session_cfg: SessionConfig,
    engine: Engine,
}

impl ShardWorker {
    fn run(self) {
        let mut ctx = SolveContext::new();
        let mut sessions: HashMap<(String, String), ServedSession> = HashMap::new();
        let ShardWorker {
            rx,
            gauge,
            tenants,
            quotas,
            session_cfg,
            engine,
        } = self;
        while let Ok(msg) = rx.recv() {
            gauge.dec();
            match msg {
                ShardMsg::Counters { reply } => {
                    let _ = reply.send(*ctx.counters());
                }
                ShardMsg::Req {
                    line,
                    req,
                    body,
                    reply,
                } => {
                    let out = handle(
                        &mut sessions,
                        &mut ctx,
                        &tenants,
                        &quotas,
                        &session_cfg,
                        &engine,
                        line,
                        &req,
                        &body,
                    );
                    let c = ctx.counters_mut();
                    c.inc(Counter::ServeRequests);
                    if matches!(out.response, Response::Err { .. }) {
                        c.inc(Counter::ServeRejections);
                    }
                    if matches!(out.response, Response::SnapshotOk { .. }) {
                        c.inc(Counter::ServeSnapshots);
                    }
                    let _ = reply.send(out);
                }
            }
        }
    }
}

/// Applies one routed request against the shard's session map.
#[allow(clippy::too_many_arguments)]
fn handle(
    sessions: &mut HashMap<(String, String), ServedSession>,
    ctx: &mut SolveContext,
    tenants: &Mutex<HashMap<String, usize>>,
    quotas: &Quotas,
    session_cfg: &SessionConfig,
    engine: &Engine,
    line: usize,
    req: &Request,
    body: &str,
) -> Reply {
    // Session-count quota: check-and-increment under the shared lock so
    // concurrent opens across shards cannot oversubscribe a tenant.
    let admit_session = |tenant: &str| -> Result<(), Reply> {
        let mut map = tenants.lock().expect("tenant map lock");
        let count = map.entry(tenant.to_string()).or_insert(0);
        if quotas.max_sessions > 0 && *count >= quotas.max_sessions {
            return Err(Reply::bare(Response::error(
                line,
                ErrCode::Quota,
                format!(
                    "tenant {tenant} exceeds max sessions ({})",
                    quotas.max_sessions
                ),
            )));
        }
        *count += 1;
        Ok(())
    };
    let release_session = |tenant: &str| {
        let mut map = tenants.lock().expect("tenant map lock");
        if let Some(count) = map.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    };
    let key = |tenant: &String, session: &String| (tenant.clone(), session.clone());

    match req {
        Request::Stats => unreachable!("STATS is answered by the registry, not a shard"),
        Request::Open { tenant, session, m } => {
            if sessions.contains_key(&key(tenant, session)) {
                return Reply::bare(Response::error(
                    line,
                    ErrCode::Proto,
                    format!("session {tenant}/{session} already exists"),
                ));
            }
            if let Err(reject) = admit_session(tenant) {
                return reject;
            }
            match ServedSession::open(*m, session_cfg.clone(), quotas) {
                Ok(s) => {
                    sessions.insert(key(tenant, session), s);
                    Reply::bare(Response::OpenOk {
                        session: session.clone(),
                    })
                }
                Err(e) => {
                    release_session(tenant);
                    Reply::bare(Response::error(line, ErrCode::Session, e))
                }
            }
        }
        Request::Restore {
            tenant, session, ..
        } => {
            if sessions.contains_key(&key(tenant, session)) {
                return Reply::bare(Response::error(
                    line,
                    ErrCode::Proto,
                    format!("session {tenant}/{session} already exists"),
                ));
            }
            let log = match parse_session_log(body) {
                Ok(log) => log,
                Err(e) => {
                    return Reply::bare(Response::error(
                        line,
                        ErrCode::Proto,
                        format!("bad snapshot body: {e}"),
                    ))
                }
            };
            if let Err(reject) = admit_session(tenant) {
                return reject;
            }
            let events = log.events.len();
            match ServedSession::restore(log, session_cfg.clone(), quotas, ctx) {
                Ok(s) => {
                    sessions.insert(key(tenant, session), s);
                    Reply::bare(Response::RestoreOk { events })
                }
                Err(e) => {
                    release_session(tenant);
                    Reply::bare(Response::error(line, ErrCode::Proto, e))
                }
            }
        }
        Request::Close { tenant, session } => match sessions.remove(&key(tenant, session)) {
            Some(s) => {
                release_session(tenant);
                Reply::bare(Response::CloseOk { events: s.events() })
            }
            None => Reply::bare(unknown_session(line, tenant, session)),
        },
        Request::Snapshot { tenant, session } => match sessions.get(&key(tenant, session)) {
            Some(s) => {
                let body = s.snapshot();
                Reply {
                    response: Response::SnapshotOk {
                        body_lines: body.lines().count(),
                    },
                    body,
                }
            }
            None => Reply::bare(unknown_session(line, tenant, session)),
        },
        Request::Solve { .. } => match parse_instance(body) {
            Err(e) => Reply::bare(Response::error(
                line,
                ErrCode::Solve,
                format!("bad instance body: {e}"),
            )),
            Ok(ins) => match engine.solve(&ins) {
                Ok(rep) => {
                    // Fold the solve's deterministic counter delta into the
                    // shard registry — cache hits replay identical deltas,
                    // so totals stay byte-stable across cache modes.
                    ctx.counters_mut().merge(&rep.counters);
                    Reply::bare(Response::SolveOk {
                        makespan: rep.schedule.makespan(),
                        cstar: rep.lp.cstar,
                        alloc: rep.alloc.clone(),
                    })
                }
                Err(e) => Reply::bare(Response::error(line, ErrCode::Solve, e.to_string())),
            },
        },
        Request::Arrive {
            tenant,
            session,
            t,
            times,
        } => with_session(sessions, tenant, session, line, |s| {
            s.arrive(*t, times, line, quotas)
        }),
        Request::Edge {
            tenant,
            session,
            t,
            pred,
            succ,
        } => with_session(sessions, tenant, session, line, |s| {
            s.edge(*t, *pred, *succ, line)
        }),
        Request::Machines {
            tenant,
            session,
            t,
            m,
        } => with_session(sessions, tenant, session, line, |s| {
            s.machines(*t, *m, line)
        }),
        Request::Start {
            tenant,
            session,
            t,
            task,
        } => with_session(sessions, tenant, session, line, |s| {
            s.start(*t, *task, line)
        }),
        Request::Finish {
            tenant,
            session,
            t,
            task,
        } => with_session(sessions, tenant, session, line, |s| {
            s.mark_finished(*t, *task, line)
        }),
        Request::Replan { tenant, session, t } => {
            match sessions.get_mut(&(tenant.clone(), session.clone())) {
                Some(s) => Reply::bare(s.replan(*t, line, ctx)),
                None => Reply::bare(unknown_session(line, tenant, session)),
            }
        }
    }
}

fn unknown_session(line: usize, tenant: &str, session: &str) -> Response {
    Response::error(
        line,
        ErrCode::NoSession,
        format!("no session {tenant}/{session}"),
    )
}

fn with_session(
    sessions: &mut HashMap<(String, String), ServedSession>,
    tenant: &str,
    session: &str,
    line: usize,
    f: impl FnOnce(&mut ServedSession) -> Response,
) -> Reply {
    match sessions.get_mut(&(tenant.to_owned(), session.to_owned())) {
        Some(s) => Reply::bare(f(s)),
        None => Reply::bare(unknown_session(line, tenant, session)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_model::wire::parse_request;

    fn req(line: &str, ln: usize) -> Request {
        parse_request(line, ln).unwrap()
    }

    fn dispatch_script(reg: &Registry, script: &[(&str, &str)]) -> Vec<Reply> {
        script
            .iter()
            .enumerate()
            .map(|(i, (line, body))| reg.dispatch(i + 1, req(line, i + 1), body.to_string()))
            .collect()
    }

    fn demo_script() -> Vec<(&'static str, &'static str)> {
        vec![
            ("OPEN acme s1 4", ""),
            ("OPEN zork s1 4", ""),
            ("ARRIVE acme s1 0.0 8.0 4.0 3.0 2.0", ""),
            ("ARRIVE acme s1 0.0 6.0 3.25 2.5 2.25", ""),
            ("EDGE acme s1 0.0 0 1", ""),
            ("ARRIVE zork s1 0.0 5.0 2.75 2.0 1.75", ""),
            ("REPLAN acme s1 0.0", ""),
            ("REPLAN zork s1 0.0", ""),
            ("START acme s1 0.5 0", ""),
            ("SNAPSHOT acme s1", ""),
            ("STATS", ""),
            ("CLOSE zork s1", ""),
        ]
    }

    fn render(replies: &[Reply]) -> String {
        use mtsp_model::wire::write_response;
        let mut out = String::new();
        for r in replies {
            out.push_str(&write_response(&r.response));
            out.push('\n');
            out.push_str(&r.body);
        }
        out
    }

    #[test]
    fn responses_identical_for_any_shard_count() {
        let script = demo_script();
        let run = |shards: usize| {
            let reg = Registry::new(ServeConfig {
                shards,
                ..ServeConfig::default()
            });
            let out = render(&dispatch_script(&reg, &script));
            reg.shutdown();
            out
        };
        let one = run(1);
        assert_eq!(one, run(4), "shards 1 vs 4");
        assert_eq!(one, run(7), "shards 1 vs 7");
        assert!(one.contains("OK SNAPSHOT"));
        // 10 requests routed before STATS (STATS itself is answered by
        // the registry and not counted; CLOSE lands after).
        assert!(one.contains("serve.requests 10"), "STATS body:\n{one}");
        assert!(one.contains("serve.snapshots 1"), "STATS body:\n{one}");
    }

    #[test]
    fn session_quota_rejects_across_shards() {
        let reg = Registry::new(ServeConfig {
            shards: 4,
            quotas: Quotas {
                max_sessions: 2,
                ..Quotas::unlimited()
            },
            ..ServeConfig::default()
        });
        let script = vec![
            ("OPEN acme a 2", ""),
            ("OPEN acme b 2", ""),
            ("OPEN acme c 2", ""),
            ("OPEN other a 2", ""),
            ("CLOSE acme a", ""),
            ("OPEN acme c 2", ""),
        ];
        let replies = dispatch_script(&reg, &script);
        assert!(matches!(replies[0].response, Response::OpenOk { .. }));
        assert!(matches!(replies[1].response, Response::OpenOk { .. }));
        assert_eq!(
            replies[2].response,
            Response::error(3, ErrCode::Quota, "tenant acme exceeds max sessions (2)"),
            "third session rejected wherever it hashes"
        );
        assert!(
            matches!(replies[3].response, Response::OpenOk { .. }),
            "other tenants unaffected"
        );
        assert!(matches!(replies[4].response, Response::CloseOk { .. }));
        assert!(
            matches!(replies[5].response, Response::OpenOk { .. }),
            "close frees the budget"
        );
        reg.shutdown();
    }

    #[test]
    fn solve_goes_through_the_shared_cache() {
        use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
        use mtsp_model::textio::write_instance;
        let reg = Registry::new(ServeConfig::default());
        let ins = random_instance(DagFamily::Layered, CurveFamily::PowerLaw, 8, 4, 7);
        let body = write_instance(&ins);
        let line = format!("SOLVE acme {}", body.lines().count());
        // Two tenants solve the same instance: second hit comes from the
        // shared cache with the identical reply.
        let r1 = reg.dispatch(1, req(&line, 1), body.clone());
        let line2 = format!("SOLVE zork {}", body.lines().count());
        let r2 = reg.dispatch(2, req(&line2, 2), body.clone());
        assert_eq!(r1.response, r2.response);
        let stats = reg.cache_stats();
        assert!(
            stats.hits >= 1,
            "second solve hits the shared cache: {stats:?}"
        );
        // Unknown-session and bad-body errors are structured.
        let r = reg.dispatch(3, req("REPLAN acme nope 0.0", 3), String::new());
        assert_eq!(
            r.response,
            Response::error(3, ErrCode::NoSession, "no session acme/nope")
        );
        let r = reg.dispatch(4, req("SOLVE acme 1", 4), "garbage\n".to_string());
        assert!(matches!(
            r.response,
            Response::Err {
                code: ErrCode::Solve,
                ..
            }
        ));
        reg.shutdown();
    }
}
