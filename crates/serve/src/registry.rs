//! The sharded session registry: N shard worker threads, each owning its
//! sessions, one warm [`SolveContext`], and one [`Engine`] front over a
//! **shared** content-addressed solve cache.
//!
//! A session lives on `hash(tenant, session) % shards` for its whole
//! life; requests are routed there over a *bounded* `sync_channel` whose
//! blocking `send` is the backpressure mechanism (a full shard queue
//! slows callers down instead of buffering without bound). Each request
//! carries its own reply channel, so a connection's requests are
//! answered strictly in order and the response stream is a pure function
//! of the request stream — byte-identical for any shard count, which the
//! harness and CI assert.
//!
//! ## Durability and failure isolation
//!
//! With [`ServeConfig::wal_dir`] set, every shard journals each accepted
//! mutating request to `<dir>/<tenant>/<session>.log` (the
//! `mtsp-session v1` event format, see [`crate::wal`]) **before** the OK
//! reply leaves the shard, and `Registry::new` replays the journals it
//! finds back into live sessions — a `kill -9`'d daemon restarted on the
//! same directory resumes bit-exactly. `SNAPSHOT` doubles as journal
//! compaction.
//!
//! A panic inside a request handler is caught on the shard thread: the
//! session being served is dropped and fenced (every later request gets
//! a structured `ERR … session` until it is re-opened, restored, or
//! recovered by a restart), while every other session and shard keeps
//! serving. Should a shard thread die anyway, [`Registry::dispatch`] and
//! [`Registry::counters`] degrade to structured errors instead of
//! panicking the whole daemon.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use mtsp_engine::{Engine, EngineConfig, SessionConfig, SolveCache};
use mtsp_lp::SolveContext;
use mtsp_model::textio::parse_instance;
use mtsp_model::wire::{parse_session_log, ErrCode, Request, Response};
use mtsp_obs::{Counter, Counters, Gauge, GaugeSet};

use crate::quota::Quotas;
use crate::session::ServedSession;
use crate::wal::{self, FsyncPolicy, RecoveredSession, Wal};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (worker thread) count, `>= 1`.
    pub shards: usize,
    /// Bounded per-shard queue capacity; a full queue blocks senders.
    pub queue_cap: usize,
    /// Per-tenant quotas.
    pub quotas: Quotas,
    /// Session configuration applied to every opened session.
    pub session: SessionConfig,
    /// Engine configuration for one-shot `SOLVE` requests (the solve
    /// cache it describes is shared across all shards and tenants).
    pub engine: EngineConfig,
    /// Write-ahead journal root; `None` disables durability.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Journal fsync policy (only meaningful with `wal_dir`).
    pub fsync: FsyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_cap: 128,
            quotas: Quotas::default(),
            session: SessionConfig::new(),
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            wal_dir: None,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// One wire reply: the response line plus its raw body (empty for most
/// replies; the `mtsp-session v1` text for `OK SNAPSHOT`, counter rows
/// for `OK STATS`). Body lines are `\n`-terminated.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The one-line response.
    pub response: Response,
    /// Raw body lines following the response line.
    pub body: String,
}

impl Reply {
    fn bare(response: Response) -> Reply {
        Reply {
            response,
            body: String::new(),
        }
    }
}

enum ShardMsg {
    Req {
        line: usize,
        req: Request,
        body: String,
        reply: SyncSender<Reply>,
    },
    Counters {
        reply: SyncSender<Counters>,
    },
}

/// The sharded registry. See the module docs.
pub struct Registry {
    txs: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    depth: Vec<Gauge>,
    gauges: GaugeSet,
    cache: Arc<SolveCache>,
    tenants: Arc<Mutex<BTreeMap<String, usize>>>,
}

/// Locks the shared tenant-quota map, recovering from poisoning: the map
/// is a plain counter table that is valid between any two operations, and
/// the shard panic-isolation contract must keep the other tenants served
/// even after a panic unwound through a lock holder.
fn lock_tenants(map: &Mutex<BTreeMap<String, usize>>) -> MutexGuard<'_, BTreeMap<String, usize>> {
    map.lock().unwrap_or_else(|e| e.into_inner())
}

/// 64-bit FNV-1a over the routing key; stable across runs and platforms.
fn shard_of(tenant: &str, session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([0u8]).chain(session.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The structured reply for requests routed to a shard whose worker
/// thread is gone — degraded service, never a daemon abort.
fn shard_unavailable(line: usize, shard: usize) -> Reply {
    Reply::bare(Response::error(
        line,
        ErrCode::Session,
        format!("shard {shard} unavailable"),
    ))
}

impl Registry {
    /// Spawns the shard workers. The engine cache is created once and
    /// shared by every shard via [`Engine::with_cache`]. With
    /// [`ServeConfig::wal_dir`] set, scans the journal directory first
    /// and hands each shard the sessions it must recover before serving
    /// (the directory must be creatable/readable — a broken journal
    /// *root* is a startup failure, while individual broken journals are
    /// skipped with a warning).
    ///
    /// Returns `Err` when the journal root cannot be opened or a shard
    /// worker thread cannot be spawned — both are startup failures the
    /// caller reports, never panics.
    pub fn new(cfg: ServeConfig) -> std::io::Result<Registry> {
        let shards = cfg.shards.max(1);
        let queue_cap = cfg.queue_cap.max(1);
        let cache = Arc::new(SolveCache::with_capacity(
            cfg.engine.cache_shards,
            cfg.engine.cache_capacity,
        ));
        let tenants: Arc<Mutex<BTreeMap<String, usize>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut recovered: Vec<Vec<RecoveredSession>> = (0..shards).map(|_| Vec::new()).collect();
        if let Some(dir) = &cfg.wal_dir {
            for r in wal::scan(dir) {
                recovered[shard_of(&r.tenant, &r.session, shards)].push(r);
            }
        }
        let mut gauges = GaugeSet::new();
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        for (i, to_recover) in recovered.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(queue_cap);
            let gauge = gauges.register(&format!("serve.queue_depth.shard{i}"));
            let wal = match &cfg.wal_dir {
                Some(d) => Some(Wal::new(d, cfg.fsync)?),
                None => None,
            };
            let worker = ShardWorker {
                rx,
                gauge: gauge.clone(),
                state: ShardState {
                    sessions: BTreeMap::new(),
                    failed: BTreeSet::new(),
                    tenants: Arc::clone(&tenants),
                    quotas: cfg.quotas,
                    session_cfg: cfg.session.clone(),
                    engine: Engine::with_cache(cfg.engine.clone(), Arc::clone(&cache)),
                    wal,
                },
                to_recover,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mtsp-serve-shard{i}"))
                    .spawn(move || worker.run())?,
            );
            txs.push(tx);
            depth.push(gauge);
        }
        Ok(Registry {
            txs,
            handles,
            depth,
            gauges,
            cache,
            tenants,
        })
    }

    /// Routes one request to its shard and blocks for the reply. `line`
    /// is the 1-based input line the request arrived on (echoed in `ERR`
    /// replies); `body` is the raw body for body-carrying requests. A
    /// dead shard worker yields a structured `ERR … session` reply —
    /// requests for the surviving shards keep being served.
    pub fn dispatch(&self, line: usize, req: Request, body: String) -> Reply {
        if matches!(req, Request::Stats) {
            return self.stats();
        }
        let shard = match (req.tenant(), req.session()) {
            (Some(t), Some(s)) => shard_of(t, s, self.txs.len()),
            (Some(t), None) => shard_of(t, "", self.txs.len()),
            _ => 0,
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.depth[shard].inc();
        let sent = self.txs[shard].send(ShardMsg::Req {
            line,
            req,
            body,
            reply: reply_tx,
        });
        if sent.is_err() {
            self.depth[shard].dec();
            return shard_unavailable(line, shard);
        }
        match reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => shard_unavailable(line, shard),
        }
    }

    /// Merged deterministic counters across every shard (order-independent
    /// sum, so totals are identical for any shard count). Dead shards are
    /// skipped — their counters are lost with them.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::new();
        for (shard, tx) in self.txs.iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            self.depth[shard].inc();
            if tx.send(ShardMsg::Counters { reply: reply_tx }).is_err() {
                self.depth[shard].dec();
                continue;
            }
            if let Ok(c) = reply_rx.recv() {
                total.merge(&c);
            }
        }
        total
    }

    fn stats(&self) -> Reply {
        let total = self.counters();
        let mut body = String::new();
        for (c, v) in total.iter() {
            body.push_str(c.name());
            body.push(' ');
            body.push_str(&v.to_string());
            body.push('\n');
        }
        Reply {
            response: Response::StatsOk {
                body_lines: Counter::ALL.len(),
            },
            body,
        }
    }

    /// Shared solve-cache statistics (hits/misses across all tenants).
    pub fn cache_stats(&self) -> mtsp_engine::CacheStats {
        self.cache.stats()
    }

    /// Number of tenants currently holding at least one open session:
    /// the shared quota map's size, bounded by *live* tenants rather
    /// than historical churn.
    pub fn tracked_tenants(&self) -> usize {
        lock_tenants(&self.tenants).len()
    }

    /// Renders the per-shard queue-depth gauges (non-deterministic;
    /// stderr material).
    pub fn render_gauges(&self) -> String {
        self.gauges.render()
    }

    /// Stops the shard workers and waits for them to drain.
    pub fn shutdown(mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct ShardWorker {
    rx: Receiver<ShardMsg>,
    gauge: Gauge,
    state: ShardState,
    to_recover: Vec<RecoveredSession>,
}

impl ShardWorker {
    fn run(self) {
        let mut ctx = SolveContext::new();
        let ShardWorker {
            rx,
            gauge,
            mut state,
            to_recover,
        } = self;
        state.recover(&mut ctx, to_recover);
        while let Ok(msg) = rx.recv() {
            gauge.dec();
            match msg {
                ShardMsg::Counters { reply } => {
                    let _ = reply.send(*ctx.counters());
                }
                ShardMsg::Req {
                    line,
                    req,
                    body,
                    reply,
                } => {
                    let out = state.serve(&mut ctx, line, &req, &body);
                    let c = ctx.counters_mut();
                    c.inc(Counter::ServeRequests);
                    if matches!(out.response, Response::Err { .. }) {
                        c.inc(Counter::ServeRejections);
                    }
                    if matches!(out.response, Response::SnapshotOk { .. }) {
                        c.inc(Counter::ServeSnapshots);
                    }
                    let _ = reply.send(out);
                }
            }
        }
    }
}

/// Everything one shard worker owns: its session map, failure fences,
/// the shared tenant-quota map, and (when durability is on) its journal
/// writer.
struct ShardState {
    sessions: BTreeMap<(String, String), ServedSession>,
    /// Sessions fenced after a handler panic or journal write error:
    /// every request is answered with `ERR … session` until the key is
    /// re-opened, restored, closed, or recovered by a daemon restart.
    failed: BTreeSet<(String, String)>,
    tenants: Arc<Mutex<BTreeMap<String, usize>>>,
    quotas: Quotas,
    session_cfg: SessionConfig,
    engine: Engine,
    wal: Option<Wal>,
}

impl ShardState {
    /// Session-count quota: check-and-increment under the shared lock so
    /// concurrent opens across shards cannot oversubscribe a tenant.
    fn admit_tenant(&self, tenant: &str, line: usize) -> Result<(), Reply> {
        let mut map = lock_tenants(&self.tenants);
        let count = map.entry(tenant.to_string()).or_insert(0);
        if self.quotas.max_sessions > 0 && *count >= self.quotas.max_sessions {
            if *count == 0 {
                map.remove(tenant);
            }
            return Err(Reply::bare(Response::error(
                line,
                ErrCode::Quota,
                format!(
                    "tenant {tenant} exceeds max sessions ({})",
                    self.quotas.max_sessions
                ),
            )));
        }
        *count += 1;
        Ok(())
    }

    /// Recovered sessions were admitted under quota before the crash;
    /// re-admitting them is unconditional (and deterministic).
    fn admit_tenant_unchecked(&self, tenant: &str) {
        let mut map = lock_tenants(&self.tenants);
        *map.entry(tenant.to_string()).or_insert(0) += 1;
    }

    fn release_tenant(&self, tenant: &str) {
        let mut map = lock_tenants(&self.tenants);
        if let Some(count) = map.get_mut(tenant) {
            *count = count.saturating_sub(1);
            // Drop zero entries so tenant churn cannot grow the shared
            // map without bound.
            if *count == 0 {
                map.remove(tenant);
            }
        }
    }

    /// Replays journals assigned to this shard, in the deterministic
    /// `(tenant, session)` order the scan produced. A journal that fails
    /// replay fences its session instead of blocking the shard.
    fn recover(&mut self, ctx: &mut SolveContext, to_recover: Vec<RecoveredSession>) {
        for r in to_recover {
            let key = (r.tenant.clone(), r.session.clone());
            match ServedSession::restore(r.log, self.session_cfg.clone(), &self.quotas, ctx) {
                Ok(s) => {
                    // Compact immediately: resync the header count and
                    // shed any torn tail bytes the reader truncated. A
                    // failed rewrite fences the session instead of
                    // serving it — otherwise the next append would land
                    // right after the stale torn tail on disk, fusing
                    // into a mid-file-corrupt record that a later
                    // restart refuses to recover at all.
                    if let Some(w) = self.wal.as_mut() {
                        if let Err(e) = w.write_full(&r.tenant, &r.session, &s.to_log()) {
                            eprintln!(
                                "# mtsp serve: journal compaction failed for {}/{}: {e}; \
                                 fencing the session",
                                r.tenant, r.session
                            );
                            w.detach(&r.tenant, &r.session);
                            self.failed.insert(key);
                            continue;
                        }
                    }
                    self.admit_tenant_unchecked(&r.tenant);
                    self.sessions.insert(key, s);
                    ctx.counters_mut().inc(Counter::Recoveries);
                }
                Err(e) => {
                    eprintln!(
                        "# mtsp serve: journal replay failed for {}/{}: {e}",
                        r.tenant, r.session
                    );
                    self.failed.insert(key);
                }
            }
        }
    }

    /// Fences a session whose in-memory state can no longer be trusted
    /// (handler panic, journal write failure). Its journal stays on disk:
    /// the events journaled so far are valid, so a restart recovers the
    /// session to its last acknowledged state.
    fn poison(&mut self, tenant: &str, session: &str) {
        let key = (tenant.to_string(), session.to_string());
        if self.sessions.remove(&key).is_some() {
            self.release_tenant(tenant);
        }
        if let Some(w) = self.wal.as_mut() {
            w.detach(tenant, session);
        }
        self.failed.insert(key);
    }

    /// One routed request: failure fences, panic containment, then the
    /// actual handler.
    fn serve(&mut self, ctx: &mut SolveContext, line: usize, req: &Request, body: &str) -> Reply {
        if let (Some(t), Some(s)) = (req.tenant(), req.session()) {
            let key = (t.to_string(), s.to_string());
            if self.failed.contains(&key) {
                match req {
                    // A fresh OPEN/RESTORE gives the key a new life (and
                    // rewrites the journal).
                    Request::Open { .. } | Request::Restore { .. } => {
                        self.failed.remove(&key);
                    }
                    // CLOSE discards the failed session for good: marker
                    // and journal both dropped, but the reply is still an
                    // error — the absorbed-event count died with the
                    // session.
                    Request::Close { .. } => {
                        self.failed.remove(&key);
                        if let Some(w) = self.wal.as_mut() {
                            if let Err(e) = w.remove(t, s) {
                                eprintln!("# mtsp serve: journal removal failed for {t}/{s}: {e}");
                            }
                        }
                        return Reply::bare(Response::error(
                            line,
                            ErrCode::Session,
                            format!("session {t}/{s} failed; marker and journal discarded"),
                        ));
                    }
                    _ => {
                        return Reply::bare(Response::error(
                            line,
                            ErrCode::Session,
                            format!(
                                "session {t}/{s} failed; reopen, restore, or restart to recover"
                            ),
                        ));
                    }
                }
            }
        }
        let caught =
            std::panic::catch_unwind(AssertUnwindSafe(|| self.handle(ctx, line, req, body)));
        match caught {
            Ok(reply) => reply,
            Err(_) => match (req.tenant(), req.session()) {
                (Some(t), Some(s)) => {
                    let (t, s) = (t.to_string(), s.to_string());
                    self.poison(&t, &s);
                    Reply::bare(Response::error(
                        line,
                        ErrCode::Session,
                        format!("session {t}/{s} failed: request handler panicked"),
                    ))
                }
                _ => Reply::bare(Response::error(
                    line,
                    ErrCode::Session,
                    "request handler panicked",
                )),
            },
        }
    }

    /// Journal bookkeeping after a successful session mutation: append
    /// the event the session just logged, before the reply escapes the
    /// shard. An append failure un-acknowledges the mutation — the
    /// session is fenced and the client sees an error, never an OK whose
    /// record the journal does not hold.
    fn journal_tail(
        &mut self,
        ctx: &mut SolveContext,
        tenant: &str,
        session: &str,
        line: usize,
        reply: Reply,
    ) -> Reply {
        if matches!(reply.response, Response::Err { .. }) {
            return reply;
        }
        let key = (tenant.to_string(), session.to_string());
        let Some(ev) = self
            .sessions
            .get(&key)
            .and_then(|s| s.last_event())
            .cloned()
        else {
            return reply;
        };
        let Some(w) = self.wal.as_mut() else {
            return reply;
        };
        match w.append(tenant, session, &ev) {
            Ok(()) => {
                ctx.counters_mut().inc(Counter::WalAppends);
                reply
            }
            Err(e) => {
                self.poison(tenant, session);
                Reply::bare(Response::error(
                    line,
                    ErrCode::Session,
                    format!("session {tenant}/{session} failed: journal append: {e}"),
                ))
            }
        }
    }

    /// Applies one routed request against the shard's session map.
    fn handle(&mut self, ctx: &mut SolveContext, line: usize, req: &Request, body: &str) -> Reply {
        #[cfg(test)]
        if matches!(req, Request::Open { .. }) && req.tenant() == Some("__panic__") {
            // lint:allow(R3): deliberate test-only panic exercising the
            // shard-isolation containment path; compiled out of release.
            panic!("injected panic for shard-isolation tests");
        }
        let key = |tenant: &String, session: &String| (tenant.clone(), session.clone());

        match req {
            // `dispatch` answers STATS from the registry itself; a shard
            // receiving one is a routing bug, reported as a structured
            // error instead of aborting the shard thread.
            Request::Stats => Reply::bare(Response::error(
                line,
                ErrCode::Proto,
                "STATS is answered by the registry, not a shard",
            )),
            Request::Open { tenant, session, m } => {
                if self.sessions.contains_key(&key(tenant, session)) {
                    return Reply::bare(Response::error(
                        line,
                        ErrCode::Proto,
                        format!("session {tenant}/{session} already exists"),
                    ));
                }
                if let Err(reject) = self.admit_tenant(tenant, line) {
                    return reject;
                }
                match ServedSession::open(*m, self.session_cfg.clone(), &self.quotas) {
                    Ok(s) => {
                        if let Some(w) = self.wal.as_mut() {
                            if let Err(e) = w.create(tenant, session, *m) {
                                self.release_tenant(tenant);
                                return Reply::bare(Response::error(
                                    line,
                                    ErrCode::Session,
                                    format!("journal create: {e}"),
                                ));
                            }
                            ctx.counters_mut().inc(Counter::WalAppends);
                        }
                        self.sessions.insert(key(tenant, session), s);
                        Reply::bare(Response::OpenOk {
                            session: session.clone(),
                        })
                    }
                    Err(e) => {
                        self.release_tenant(tenant);
                        Reply::bare(Response::error(line, ErrCode::Session, e))
                    }
                }
            }
            Request::Restore {
                tenant, session, ..
            } => {
                if self.sessions.contains_key(&key(tenant, session)) {
                    return Reply::bare(Response::error(
                        line,
                        ErrCode::Proto,
                        format!("session {tenant}/{session} already exists"),
                    ));
                }
                let log = match parse_session_log(body) {
                    Ok(log) => log,
                    Err(e) => {
                        return Reply::bare(Response::error(
                            line,
                            ErrCode::Proto,
                            format!("bad snapshot body: {e}"),
                        ))
                    }
                };
                if let Err(reject) = self.admit_tenant(tenant, line) {
                    return reject;
                }
                let events = log.events.len();
                match ServedSession::restore(log, self.session_cfg.clone(), &self.quotas, ctx) {
                    Ok(s) => {
                        if let Some(w) = self.wal.as_mut() {
                            if let Err(e) = w.write_full(tenant, session, &s.to_log()) {
                                self.release_tenant(tenant);
                                return Reply::bare(Response::error(
                                    line,
                                    ErrCode::Session,
                                    format!("journal create: {e}"),
                                ));
                            }
                            ctx.counters_mut().inc(Counter::WalAppends);
                        }
                        self.sessions.insert(key(tenant, session), s);
                        Reply::bare(Response::RestoreOk { events })
                    }
                    Err(e) => {
                        self.release_tenant(tenant);
                        Reply::bare(Response::error(line, ErrCode::Proto, e))
                    }
                }
            }
            Request::Close { tenant, session } => {
                match self.sessions.remove(&key(tenant, session)) {
                    Some(s) => {
                        self.release_tenant(tenant);
                        if let Some(w) = self.wal.as_mut() {
                            if let Err(e) = w.remove(tenant, session) {
                                eprintln!(
                                    "# mtsp serve: journal removal failed for \
                                     {tenant}/{session}: {e}"
                                );
                            }
                        }
                        Reply::bare(Response::CloseOk { events: s.events() })
                    }
                    None => Reply::bare(unknown_session(line, tenant, session)),
                }
            }
            Request::Snapshot { tenant, session } => {
                match self.sessions.get(&key(tenant, session)) {
                    Some(s) => {
                        let body = s.snapshot();
                        let log = s.to_log();
                        let reply = Reply {
                            response: Response::SnapshotOk {
                                body_lines: body.lines().count(),
                            },
                            body,
                        };
                        // Snapshot doubles as compaction: the journal is
                        // atomically rewritten to the snapshot bytes. A
                        // failed rewrite leaves the previous journal
                        // intact, so it only warns.
                        if let Some(w) = self.wal.as_mut() {
                            if let Err(e) = w.write_full(tenant, session, &log) {
                                eprintln!(
                                    "# mtsp serve: journal compaction failed for \
                                     {tenant}/{session}: {e}"
                                );
                            }
                        }
                        reply
                    }
                    None => Reply::bare(unknown_session(line, tenant, session)),
                }
            }
            Request::Solve { .. } => match parse_instance(body) {
                Err(e) => Reply::bare(Response::error(
                    line,
                    ErrCode::Solve,
                    format!("bad instance body: {e}"),
                )),
                Ok(ins) => match self.engine.solve(&ins) {
                    Ok(rep) => {
                        // Fold the solve's deterministic counter delta into
                        // the shard registry — cache hits replay identical
                        // deltas, so totals stay byte-stable across cache
                        // modes.
                        ctx.counters_mut().merge(&rep.counters);
                        Reply::bare(Response::SolveOk {
                            makespan: rep.schedule.makespan(),
                            cstar: rep.lp.cstar,
                            alloc: rep.alloc.clone(),
                        })
                    }
                    Err(e) => Reply::bare(Response::error(line, ErrCode::Solve, e.to_string())),
                },
            },
            Request::Arrive {
                tenant,
                session,
                t,
                times,
            } => {
                let quotas = self.quotas;
                let reply = with_session(&mut self.sessions, tenant, session, line, |s| {
                    s.arrive(*t, times, line, &quotas)
                });
                self.journal_tail(ctx, tenant, session, line, reply)
            }
            Request::Edge {
                tenant,
                session,
                t,
                pred,
                succ,
            } => {
                let reply = with_session(&mut self.sessions, tenant, session, line, |s| {
                    s.edge(*t, *pred, *succ, line)
                });
                self.journal_tail(ctx, tenant, session, line, reply)
            }
            Request::Machines {
                tenant,
                session,
                t,
                m,
            } => {
                let reply = with_session(&mut self.sessions, tenant, session, line, |s| {
                    s.machines(*t, *m, line)
                });
                self.journal_tail(ctx, tenant, session, line, reply)
            }
            Request::Start {
                tenant,
                session,
                t,
                task,
            } => {
                let reply = with_session(&mut self.sessions, tenant, session, line, |s| {
                    s.start(*t, *task, line)
                });
                self.journal_tail(ctx, tenant, session, line, reply)
            }
            Request::Finish {
                tenant,
                session,
                t,
                task,
            } => {
                let reply = with_session(&mut self.sessions, tenant, session, line, |s| {
                    s.mark_finished(*t, *task, line)
                });
                self.journal_tail(ctx, tenant, session, line, reply)
            }
            Request::Replan { tenant, session, t } => {
                let reply = match self.sessions.get_mut(&(tenant.clone(), session.clone())) {
                    Some(s) => Reply::bare(s.replan(*t, line, ctx)),
                    None => Reply::bare(unknown_session(line, tenant, session)),
                };
                self.journal_tail(ctx, tenant, session, line, reply)
            }
        }
    }
}

fn unknown_session(line: usize, tenant: &str, session: &str) -> Response {
    Response::error(
        line,
        ErrCode::NoSession,
        format!("no session {tenant}/{session}"),
    )
}

fn with_session(
    sessions: &mut BTreeMap<(String, String), ServedSession>,
    tenant: &str,
    session: &str,
    line: usize,
    f: impl FnOnce(&mut ServedSession) -> Response,
) -> Reply {
    match sessions.get_mut(&(tenant.to_owned(), session.to_owned())) {
        Some(s) => Reply::bare(f(s)),
        None => Reply::bare(unknown_session(line, tenant, session)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_model::wire::parse_request;

    fn req(line: &str, ln: usize) -> Request {
        parse_request(line, ln).unwrap()
    }

    fn dispatch_script(reg: &Registry, script: &[(&str, &str)]) -> Vec<Reply> {
        script
            .iter()
            .enumerate()
            .map(|(i, (line, body))| reg.dispatch(i + 1, req(line, i + 1), body.to_string()))
            .collect()
    }

    fn demo_script() -> Vec<(&'static str, &'static str)> {
        vec![
            ("OPEN acme s1 4", ""),
            ("OPEN zork s1 4", ""),
            ("ARRIVE acme s1 0.0 8.0 4.0 3.0 2.0", ""),
            ("ARRIVE acme s1 0.0 6.0 3.25 2.5 2.25", ""),
            ("EDGE acme s1 0.0 0 1", ""),
            ("ARRIVE zork s1 0.0 5.0 2.75 2.0 1.75", ""),
            ("REPLAN acme s1 0.0", ""),
            ("REPLAN zork s1 0.0", ""),
            ("START acme s1 0.5 0", ""),
            ("SNAPSHOT acme s1", ""),
            ("STATS", ""),
            ("CLOSE zork s1", ""),
        ]
    }

    fn render(replies: &[Reply]) -> String {
        use mtsp_model::wire::write_response;
        let mut out = String::new();
        for r in replies {
            out.push_str(&write_response(&r.response));
            out.push('\n');
            out.push_str(&r.body);
        }
        out
    }

    fn tmp_wal_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtsp-registry-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn responses_identical_for_any_shard_count() {
        let script = demo_script();
        let run = |shards: usize| {
            let reg = Registry::new(ServeConfig {
                shards,
                ..ServeConfig::default()
            })
            .unwrap();
            let out = render(&dispatch_script(&reg, &script));
            reg.shutdown();
            out
        };
        let one = run(1);
        assert_eq!(one, run(4), "shards 1 vs 4");
        assert_eq!(one, run(7), "shards 1 vs 7");
        assert!(one.contains("OK SNAPSHOT"));
        // 10 requests routed before STATS (STATS itself is answered by
        // the registry and not counted; CLOSE lands after).
        assert!(one.contains("serve.requests 10"), "STATS body:\n{one}");
        assert!(one.contains("serve.snapshots 1"), "STATS body:\n{one}");
        // Durability is off: the WAL counters exist but stay zero.
        assert!(one.contains("serve.wal_appends 0"), "STATS body:\n{one}");
        assert!(one.contains("serve.recoveries 0"), "STATS body:\n{one}");
    }

    #[test]
    fn session_quota_rejects_across_shards() {
        let reg = Registry::new(ServeConfig {
            shards: 4,
            quotas: Quotas {
                max_sessions: 2,
                ..Quotas::unlimited()
            },
            ..ServeConfig::default()
        })
        .unwrap();
        let script = vec![
            ("OPEN acme a 2", ""),
            ("OPEN acme b 2", ""),
            ("OPEN acme c 2", ""),
            ("OPEN other a 2", ""),
            ("CLOSE acme a", ""),
            ("OPEN acme c 2", ""),
        ];
        let replies = dispatch_script(&reg, &script);
        assert!(matches!(replies[0].response, Response::OpenOk { .. }));
        assert!(matches!(replies[1].response, Response::OpenOk { .. }));
        assert_eq!(
            replies[2].response,
            Response::error(3, ErrCode::Quota, "tenant acme exceeds max sessions (2)"),
            "third session rejected wherever it hashes"
        );
        assert!(
            matches!(replies[3].response, Response::OpenOk { .. }),
            "other tenants unaffected"
        );
        assert!(matches!(replies[4].response, Response::CloseOk { .. }));
        assert!(
            matches!(replies[5].response, Response::OpenOk { .. }),
            "close frees the budget"
        );
        reg.shutdown();
    }

    #[test]
    fn solve_goes_through_the_shared_cache() {
        use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
        use mtsp_model::textio::write_instance;
        let reg = Registry::new(ServeConfig::default()).unwrap();
        let ins = random_instance(DagFamily::Layered, CurveFamily::PowerLaw, 8, 4, 7);
        let body = write_instance(&ins);
        let line = format!("SOLVE acme {}", body.lines().count());
        // Two tenants solve the same instance: second hit comes from the
        // shared cache with the identical reply.
        let r1 = reg.dispatch(1, req(&line, 1), body.clone());
        let line2 = format!("SOLVE zork {}", body.lines().count());
        let r2 = reg.dispatch(2, req(&line2, 2), body.clone());
        assert_eq!(r1.response, r2.response);
        let stats = reg.cache_stats();
        assert!(
            stats.hits >= 1,
            "second solve hits the shared cache: {stats:?}"
        );
        // Unknown-session and bad-body errors are structured.
        let r = reg.dispatch(3, req("REPLAN acme nope 0.0", 3), String::new());
        assert_eq!(
            r.response,
            Response::error(3, ErrCode::NoSession, "no session acme/nope")
        );
        let r = reg.dispatch(4, req("SOLVE acme 1", 4), "garbage\n".to_string());
        assert!(matches!(
            r.response,
            Response::Err {
                code: ErrCode::Solve,
                ..
            }
        ));
        reg.shutdown();
    }

    #[test]
    fn tenant_quota_map_does_not_leak_under_churn() {
        let reg = Registry::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        })
        .unwrap();
        for i in 0..64 {
            let open = format!("OPEN churn{i} s 2");
            let close = format!("CLOSE churn{i} s");
            let r = reg.dispatch(1, req(&open, 1), String::new());
            assert!(matches!(r.response, Response::OpenOk { .. }), "{r:?}");
            let r = reg.dispatch(2, req(&close, 2), String::new());
            assert!(matches!(r.response, Response::CloseOk { .. }), "{r:?}");
        }
        assert_eq!(
            reg.tracked_tenants(),
            0,
            "zero-count tenants must be dropped from the shared quota map"
        );
        // Partial release keeps the tenant tracked.
        reg.dispatch(3, req("OPEN acme s1 2", 3), String::new());
        reg.dispatch(4, req("OPEN acme s2 2", 4), String::new());
        reg.dispatch(5, req("CLOSE acme s1", 5), String::new());
        assert_eq!(reg.tracked_tenants(), 1);
        reg.dispatch(6, req("CLOSE acme s2", 6), String::new());
        assert_eq!(reg.tracked_tenants(), 0);
        reg.shutdown();
    }

    #[test]
    fn panicking_handler_is_contained_to_its_session() {
        let reg = Registry::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        })
        .unwrap();
        // The injected panic (tenant "__panic__", see `handle`) must not
        // take down the shard thread or the daemon.
        let r = reg.dispatch(1, req("OPEN __panic__ s1 2", 1), String::new());
        assert_eq!(
            r.response,
            Response::error(
                1,
                ErrCode::Session,
                "session __panic__/s1 failed: request handler panicked"
            )
        );
        // Every shard keeps serving other tenants (8 names spread over 4
        // shards).
        for i in 0..8 {
            let line = format!("OPEN t{i} s 2");
            let r = reg.dispatch(2, req(&line, 2), String::new());
            assert!(matches!(r.response, Response::OpenOk { .. }), "{r:?}");
        }
        // The failed key is fenced with a structured error...
        let r = reg.dispatch(3, req("REPLAN __panic__ s1 0.0", 3), String::new());
        assert_eq!(
            r.response,
            Response::error(
                3,
                ErrCode::Session,
                "session __panic__/s1 failed; reopen, restore, or restart to recover"
            )
        );
        // ...and CLOSE discards it (error reply, but the fence clears).
        let r = reg.dispatch(4, req("CLOSE __panic__ s1", 4), String::new());
        assert!(
            matches!(
                r.response,
                Response::Err {
                    code: ErrCode::Session,
                    ..
                }
            ),
            "{r:?}"
        );
        let r = reg.dispatch(5, req("REPLAN __panic__ s1 0.0", 5), String::new());
        assert_eq!(
            r.response,
            Response::error(5, ErrCode::NoSession, "no session __panic__/s1"),
            "after CLOSE the key is simply unknown again"
        );
        reg.shutdown();
    }

    #[test]
    fn dead_shard_worker_degrades_to_structured_errors() {
        let mut reg = Registry::new(ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        })
        .unwrap();
        // Open one session per shard so every shard holds state.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        for n in names {
            let line = format!("OPEN {n} s 2");
            let r = reg.dispatch(1, req(&line, 1), String::new());
            assert!(matches!(r.response, Response::OpenOk { .. }));
        }
        // Poison the shard owning acme/s1 by replacing its sender with
        // one whose receiver is already gone: the worker drains and
        // exits, and sends to it fail like they would to a dead thread.
        let dead = shard_of("acme", "s1", 4);
        let (dead_tx, dead_rx) = mpsc::sync_channel(1);
        drop(dead_rx);
        reg.txs[dead] = dead_tx;
        let r = reg.dispatch(2, req("OPEN acme s1 2", 2), String::new());
        assert_eq!(
            r.response,
            Response::error(2, ErrCode::Session, format!("shard {dead} unavailable")),
            "dead shard answers with a structured error, not a panic"
        );
        // Sessions on the surviving shards still answer.
        let mut survivors = 0;
        for n in names {
            if shard_of(n, "s", 4) == dead {
                continue;
            }
            let line = format!("REPLAN {n} s 0.0");
            let r = reg.dispatch(3, req(&line, 3), String::new());
            assert!(matches!(r.response, Response::ReplanOk { .. }), "{r:?}");
            survivors += 1;
        }
        assert!(survivors > 0, "test names must span surviving shards");
        // STATS skips the dead shard instead of aborting.
        let stats = reg.dispatch(4, req("STATS", 4), String::new());
        assert!(matches!(stats.response, Response::StatsOk { .. }));
        reg.shutdown();
    }

    #[test]
    fn wal_recovery_resumes_sessions_bit_exactly() {
        let dir = tmp_wal_dir("recover");
        let cfg = || ServeConfig {
            shards: 2,
            wal_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            ..ServeConfig::default()
        };
        // First life: mutate two sessions, snapshot one, never close.
        let reg = Registry::new(cfg()).unwrap();
        let script = vec![
            ("OPEN acme s1 4", ""),
            ("OPEN zork s1 4", ""),
            // Valid A1/A2 curves: every event below is accepted, so the
            // append accounting is exact.
            ("ARRIVE acme s1 0.0 8.0 4.5 3.5 3.0", ""),
            ("ARRIVE acme s1 0.0 6.0 3.25 2.5 2.25", ""),
            ("EDGE acme s1 0.0 0 1", ""),
            ("ARRIVE zork s1 0.0 5.0 2.75 2.0 1.75", ""),
            ("REPLAN acme s1 0.0", ""),
            ("REPLAN zork s1 0.0", ""),
            ("START acme s1 0.5 0", ""),
            ("SNAPSHOT acme s1", ""),
        ];
        let replies = dispatch_script(&reg, &script);
        for (i, r) in replies[..9].iter().enumerate() {
            assert!(
                !matches!(r.response, Response::Err { .. }),
                "request {} unexpectedly rejected: {r:?}",
                i + 1
            );
        }
        let pre_snapshot = replies[9].body.clone();
        assert!(!pre_snapshot.is_empty());
        let appends = reg.counters().get(Counter::WalAppends);
        // 2 journal creations + 7 accepted mutating events (snapshot
        // compaction does not count).
        assert_eq!(appends, 9, "append-per-accepted-record accounting");
        // Abandon without CLOSE — the journals stay behind, exactly as
        // after a crash (a torn tail is exercised separately in wal.rs
        // and the harness durability audit).
        reg.shutdown();

        // Second life: sessions come back bit-exactly and keep going.
        let reg = Registry::new(cfg()).unwrap();
        let r = reg.dispatch(1, req("SNAPSHOT acme s1", 1), String::new());
        assert_eq!(r.body, pre_snapshot, "recovered snapshot diverged");
        assert_eq!(reg.counters().get(Counter::Recoveries), 2);
        let r = reg.dispatch(2, req("REPLAN acme s1 0.5", 2), String::new());
        assert!(matches!(r.response, Response::ReplanOk { .. }), "{r:?}");
        // Recovered sessions count against the tenant quota map again.
        assert_eq!(reg.tracked_tenants(), 2);
        let r = reg.dispatch(3, req("CLOSE zork s1", 3), String::new());
        assert!(matches!(r.response, Response::CloseOk { .. }));
        reg.shutdown();

        // Third life: the closed session is gone, the open one persists.
        let reg = Registry::new(cfg()).unwrap();
        assert_eq!(reg.counters().get(Counter::Recoveries), 1);
        let r = reg.dispatch(1, req("SNAPSHOT zork s1", 1), String::new());
        assert_eq!(
            r.response,
            Response::error(1, ErrCode::NoSession, "no session zork/s1"),
            "CLOSE removed the journal"
        );
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_post_recovery_compaction_fences_the_session() {
        let dir = tmp_wal_dir("fence-compaction");
        {
            let mut w = Wal::new(&dir, FsyncPolicy::Never).unwrap();
            w.create("acme", "s1", 2).unwrap();
        }
        // The review scenario: a torn tail the reader truncates, whose
        // partial bytes stay on disk unless compaction rewrites them.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("acme").join("s1.log"))
            .unwrap();
        f.write_all(b"arrive 0.0 1.0").unwrap();
        drop(f);
        // A directory squatting on the compaction temp path makes
        // write_full fail during recovery.
        std::fs::create_dir_all(dir.join("acme").join("s1.log.tmp")).unwrap();

        let reg = Registry::new(ServeConfig {
            shards: 2,
            wal_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            ..ServeConfig::default()
        })
        .unwrap();
        // The session must be fenced, not served: an append landing
        // after the stale torn tail would fuse into a mid-file-corrupt
        // record and lose the journal entirely on the next restart.
        assert_eq!(reg.counters().get(Counter::Recoveries), 0);
        assert_eq!(reg.tracked_tenants(), 0, "fenced sessions hold no quota");
        let r = reg.dispatch(1, req("ARRIVE acme s1 0.0 2.0 1.0", 1), String::new());
        assert_eq!(
            r.response,
            Response::error(
                1,
                ErrCode::Session,
                "session acme/s1 failed; reopen, restore, or restart to recover"
            )
        );
        // The journal survives on disk for the next recovery attempt.
        assert!(dir.join("acme").join("s1.log").exists());
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_transcripts_identical_across_shard_counts() {
        let script = demo_script();
        let run = |shards: usize, tag: &str| {
            let dir = tmp_wal_dir(tag);
            let reg = Registry::new(ServeConfig {
                shards,
                wal_dir: Some(dir.clone()),
                fsync: FsyncPolicy::Interval,
                ..ServeConfig::default()
            })
            .unwrap();
            let out = render(&dispatch_script(&reg, &script));
            reg.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
            out
        };
        let one = run(1, "shards1");
        assert_eq!(one, run(4, "shards4"), "journaling must not skew replies");
        // Journal appends are part of the deterministic counter set: 2
        // creations + 5 accepted events (the demo script's first ARRIVE
        // and its EDGE are deliberately rejected).
        assert!(one.contains("serve.wal_appends 7"), "STATS body:\n{one}");
    }
}
