#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # mtsp-serve — the multi-tenant scheduling daemon
//!
//! A long-lived process fronting many tenants' online scheduling
//! sessions behind the `mtsp-wire v1` line protocol
//! (`mtsp_model::wire`):
//!
//! * **Sharded registry** ([`Registry`]): sessions hash to one of N
//!   shards; each shard is a worker thread owning its sessions, one warm
//!   LP [`SolveContext`](mtsp_lp::SolveContext) shared across them
//!   (`ScheduleSession::replan_in`), and an [`Engine`](mtsp_engine::Engine)
//!   front over a solve cache **shared by every shard and tenant**
//!   (`Engine::with_cache`). Plans are pure functions of each session's
//!   event history, so responses are byte-identical for any shard count —
//!   asserted in tests, the harness `serve` section, and CI.
//! * **Backpressure** ([`ServeConfig::queue_cap`]): shard queues are
//!   bounded `sync_channel`s; a full queue blocks the sender instead of
//!   buffering without bound.
//! * **Quotas** ([`Quotas`]): max sessions per tenant (global, across
//!   shards), max tasks per session, and a max replan rate enforced by a
//!   deterministic token bucket over the session's *logical* event clock
//!   — quota `ERR` replies are part of the deterministic transcript.
//! * **Snapshot/restore** (`mtsp-session v1`): a session serializes as
//!   its full event log; replaying the log through a fresh session
//!   reproduces every planned allotment bit-exactly, so the daemon can
//!   crash-recover and tenants can migrate across shards or processes.
//! * **Durability** ([`wal`], [`ServeConfig::wal_dir`]): with a journal
//!   directory configured, every accepted mutating request is appended
//!   to a per-session write-ahead journal *before* its OK reply is sent
//!   (fsync policy [`FsyncPolicy`]), and a restarted daemon replays the
//!   journals back into live sessions — `kill -9` recovery is
//!   bit-exact, `SNAPSHOT` doubles as atomic journal compaction, and a
//!   torn final record is truncated rather than poisoning recovery.
//! * **Failure isolation**: a panic inside a request handler is caught
//!   on its shard thread; the affected session is fenced with structured
//!   `ERR … session` replies (its journal kept for restart healing)
//!   while every other session and shard keeps serving, and a dead shard
//!   degrades [`Registry::dispatch`] to structured errors instead of
//!   aborting the daemon.
//! * **Telemetry**: deterministic `serve.requests` / `serve.rejections` /
//!   `serve.snapshots` / `serve.wal_appends` / `serve.recoveries`
//!   counters merged across shards (`STATS`, audit reports), plus
//!   non-deterministic per-shard queue-depth gauges (stderr only).
//!
//! Transports: stdin/stdout pipes ([`daemon::serve_stdio`]), Unix
//! sockets ([`daemon::serve_unix`]), TCP ([`daemon::serve_tcp`]), and an
//! in-process script runner ([`daemon::serve_script`]) for deterministic
//! tests. [`client`] drives scripted sessions from the `mtsp client`
//! verb.

pub mod client;
pub mod daemon;
pub mod quota;
pub mod registry;
pub mod session;
pub mod wal;

pub use client::ClientOutcome;
pub use quota::Quotas;
pub use registry::{Registry, Reply, ServeConfig};
pub use session::ServedSession;
pub use wal::FsyncPolicy;
