//! Error type for the simulator.

use std::fmt;

/// Errors raised while executing a schedule on the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A start event required more processors than were free.
    CapacityViolation {
        /// Task that could not be placed.
        task: usize,
        /// Time of the start event.
        time: f64,
        /// Processors requested.
        requested: usize,
        /// Processors free at that moment.
        free: usize,
    },
    /// Enough processors were free in total, but no *contiguous* block of
    /// the requested size existed (contiguous-allocation mode only).
    FragmentationViolation {
        /// Task that could not be placed contiguously.
        task: usize,
        /// Time of the start event.
        time: f64,
        /// Processors requested.
        requested: usize,
        /// Largest free contiguous block at that moment.
        largest_block: usize,
    },
    /// A precedence arc was violated by the realized start times.
    PrecedenceViolation {
        /// Predecessor task.
        pred: usize,
        /// Successor task.
        succ: usize,
    },
    /// Schedule/instance shape mismatch.
    ShapeMismatch(String),
    /// The event-driven session replay failed (an invalid scenario /
    /// session interaction; carries the underlying message).
    ReplayFailure(String),
    /// A noise-model parameter was outside its documented domain (e.g.
    /// `Uniform { epsilon }` with `ε ∉ [0, 1)`, which would sample
    /// non-positive realized durations).
    InvalidNoise {
        /// The noise model kind (`"uniform"` / `"slowdown"`).
        kind: &'static str,
        /// The offending amplitude.
        epsilon: f64,
        /// The documented domain.
        domain: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CapacityViolation {
                task,
                time,
                requested,
                free,
            } => write!(
                f,
                "task {task} needs {requested} processors at t = {time} but only {free} free"
            ),
            SimError::FragmentationViolation {
                task,
                time,
                requested,
                largest_block,
            } => write!(
                f,
                "task {task} needs a contiguous block of {requested} at t = {time} but the \
                 largest free block has {largest_block}"
            ),
            SimError::PrecedenceViolation { pred, succ } => {
                write!(f, "task {succ} started before predecessor {pred} finished")
            }
            SimError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SimError::ReplayFailure(msg) => write!(f, "session replay failed: {msg}"),
            SimError::InvalidNoise {
                kind,
                epsilon,
                domain,
            } => write!(
                f,
                "{kind} noise amplitude epsilon = {epsilon} outside its domain {domain}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::CapacityViolation {
            task: 2,
            time: 1.5,
            requested: 3,
            free: 1,
        };
        assert!(e.to_string().contains("task 2"));
        assert!(e.to_string().contains("only 1 free"));
        let e = SimError::PrecedenceViolation { pred: 0, succ: 1 };
        assert!(e.to_string().contains("predecessor 0"));
        assert!(SimError::ShapeMismatch("x".into())
            .to_string()
            .contains('x'));
    }
}
