//! Contiguity-aware online list scheduling.
//!
//! [`crate::executor::execute_contiguous`] shows that count-based
//! schedules usually *fragment* when forced onto contiguous processor
//! blocks (experiment E6). This module closes the loop: a list scheduler
//! that only starts a task when a **contiguous** block of its allotment is
//! free (first-fit lowest base), producing a schedule that is contiguous
//! *by construction*. Comparing its makespan with the count-based LIST
//! measures the true price of contiguity, rather than just the failure
//! rate of post-hoc placement.

use crate::trace::{Event, EventKind, Trace};
use mtsp_core::{Ord64, Schedule, ScheduledTask};
use mtsp_model::Instance;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of contiguous list scheduling.
#[derive(Debug, Clone)]
pub struct ContiguousSchedule {
    /// The schedule (starts/durations/allotment counts).
    pub schedule: Schedule,
    /// The base processor of each task's contiguous block.
    pub base: Vec<usize>,
    /// Event trace with concrete processor blocks.
    pub trace: Trace,
}

/// First free contiguous block of `need` processors (lowest base), if any.
fn first_fit(free: &[bool], need: usize) -> Option<usize> {
    let mut run = 0usize;
    for (p, &f) in free.iter().enumerate() {
        if f {
            run += 1;
            if run == need {
                return Some(p + 1 - need);
            }
        } else {
            run = 0;
        }
    }
    None
}

/// Greedy contiguous list scheduling: at each event, every ready task
/// whose allotment fits a contiguous free block starts on the lowest such
/// block (task-id priority). Tasks that fit by count but not contiguously
/// wait — the makespan difference to [`mtsp_core::list_schedule`] is the
/// price of contiguity.
///
/// # Panics
/// Panics on allotment shape errors (same contract as
/// [`mtsp_core::list_schedule`]).
#[allow(clippy::needless_range_loop)] // task id j pairs several arrays
pub fn list_schedule_contiguous(ins: &Instance, alloc: &[usize]) -> ContiguousSchedule {
    let n = ins.n();
    let m = ins.m();
    assert_eq!(alloc.len(), n, "one allotment per task required");
    assert!(
        alloc.iter().all(|&l| l >= 1 && l <= m),
        "allotments must lie in 1..=m"
    );
    let durations: Vec<f64> = ins.times_under(alloc);
    let dag = ins.dag();
    let mut remaining: Vec<usize> = (0..n).map(|j| dag.in_degree(j)).collect();
    let mut ready_time = vec![0.0f64; n];
    let mut available: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
    for j in 0..n {
        if remaining[j] == 0 {
            available.push(Reverse((Ord64(0.0), j)));
        }
    }
    let mut running: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
    let mut free = vec![true; m];
    let mut placed = vec![
        ScheduledTask {
            start: 0.0,
            alloc: 1,
            duration: 0.0,
        };
        n
    ];
    let mut base = vec![0usize; n];
    let mut trace = Trace::default();
    let mut waiting: Vec<usize> = Vec::new();
    let mut now = 0.0f64;
    let mut scheduled = 0usize;

    while scheduled < n {
        for j in waiting.drain(..) {
            available.push(Reverse((Ord64(ready_time[j]), j)));
        }
        let mut deferred = Vec::new();
        while let Some(&Reverse((rt, j))) = available.peek() {
            if rt.0 > now + 1e-12 * (1.0 + now.abs()) {
                break;
            }
            available.pop();
            match first_fit(&free, alloc[j]) {
                Some(b) => {
                    placed[j] = ScheduledTask {
                        start: now,
                        alloc: alloc[j],
                        duration: durations[j],
                    };
                    base[j] = b;
                    for f in free[b..b + alloc[j]].iter_mut() {
                        *f = false;
                    }
                    trace.events.push(Event {
                        time: now,
                        kind: EventKind::Start {
                            task: j,
                            procs: (b..b + alloc[j]).collect(),
                        },
                    });
                    running.push(Reverse((Ord64(now + durations[j]), j)));
                    scheduled += 1;
                }
                None => deferred.push(j),
            }
        }
        waiting.extend(deferred);
        if scheduled == n {
            break;
        }
        if let Some(&Reverse((finish, _))) = running.peek() {
            let next_ready = available
                .peek()
                .map(|&Reverse((rt, _))| rt.0)
                .unwrap_or(f64::INFINITY);
            if waiting.is_empty() && next_ready < finish.0 {
                now = next_ready;
                continue;
            }
            now = finish.0;
            while let Some(&Reverse((f, j))) = running.peek() {
                if f.0 > now + 1e-12 * (1.0 + now.abs()) {
                    break;
                }
                running.pop();
                for fb in free[base[j]..base[j] + alloc[j]].iter_mut() {
                    *fb = true;
                }
                trace.events.push(Event {
                    time: f.0,
                    kind: EventKind::Finish { task: j },
                });
                for &s in dag.succs(j) {
                    remaining[s] -= 1;
                    ready_time[s] = ready_time[s].max(f.0);
                    if remaining[s] == 0 {
                        available.push(Reverse((Ord64(ready_time[s]), s)));
                    }
                }
            }
        } else {
            match available.peek() {
                Some(&Reverse((rt, _))) => now = now.max(rt.0),
                None => unreachable!("tasks remain but none running or available"),
            }
        }
    }
    // Drain the completions of tasks still running after the last start so
    // the trace is complete.
    while let Some(Reverse((f, j))) = running.pop() {
        trace.events.push(Event {
            time: f.0,
            kind: EventKind::Finish { task: j },
        });
    }
    ContiguousSchedule {
        schedule: Schedule::new(m, placed),
        base,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_core::{list_schedule, Priority};
    use mtsp_model::{generate as igen, Profile};

    #[test]
    fn contiguous_schedule_is_feasible_and_traced() {
        for seed in 0..6 {
            let ins = igen::random_instance(
                igen::DagFamily::Layered,
                igen::CurveFamily::Mixed,
                25,
                8,
                seed,
            );
            let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % 4).collect();
            let out = list_schedule_contiguous(&ins, &alloc);
            out.schedule.verify(&ins).unwrap();
            assert!(out.trace.is_consistent(8), "seed {seed}");
            // Blocks really are contiguous.
            for (b, a) in out.base.iter().zip(&alloc) {
                assert!(b + a <= 8);
            }
        }
    }

    #[test]
    fn contiguity_respects_allotment_lower_bounds() {
        // NOTE: contiguity does NOT always make list schedules longer —
        // Graham's scheduling anomalies apply (restricting placements can
        // reorder starts and *shorten* the schedule; observed on Cholesky
        // seed 3). What IS a theorem: any feasible schedule under the
        // fixed allotment dominates its critical-path and area bounds.
        for seed in 0..5 {
            let ins = igen::random_instance(
                igen::DagFamily::Cholesky,
                igen::CurveFamily::PowerLaw,
                30,
                8,
                seed,
            );
            let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % 3).collect();
            let count = list_schedule(&ins, &alloc, Priority::TaskId).makespan();
            let contig = list_schedule_contiguous(&ins, &alloc).schedule.makespan();
            let lb = ins
                .critical_path_under(&alloc)
                .max(ins.total_work_under(&alloc) / 8.0);
            assert!(contig >= lb - 1e-9, "seed {seed}");
            assert!(count >= lb - 1e-9, "seed {seed}");
            // Both are greedy schedules of the same rigid tasks: Graham's
            // bound caps their mutual deviation.
            assert!(
                contig <= 2.0 * count + 1e-9 && count <= 2.0 * contig + 1e-9,
                "seed {seed}: contiguous {contig} vs count-based {count}"
            );
        }
    }

    #[test]
    fn matches_plain_list_when_everything_fits() {
        // Unit-width tasks: contiguity is vacuous; schedules coincide in
        // makespan.
        let profiles = vec![Profile::constant(1.0, 4).unwrap(); 8];
        let ins = mtsp_model::Instance::new(mtsp_dag::generate::independent(8), profiles).unwrap();
        let alloc = vec![1usize; 8];
        let a = list_schedule(&ins, &alloc, Priority::TaskId).makespan();
        let b = list_schedule_contiguous(&ins, &alloc).schedule.makespan();
        assert!((a - b).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn executes_under_contiguous_executor() {
        // The product of the contiguous scheduler must pass the contiguous
        // executor (closing the E6 loop).
        let ins = igen::random_instance(
            igen::DagFamily::Wavefront,
            igen::CurveFamily::Mixed,
            16,
            4,
            3,
        );
        let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % 2).collect();
        let out = list_schedule_contiguous(&ins, &alloc);
        let sim = crate::executor::execute_contiguous(&ins, &out.schedule);
        assert!(
            sim.is_ok(),
            "contiguous-by-construction schedule must execute: {:?}",
            sim.err()
        );
    }
}
