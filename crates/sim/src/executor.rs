//! Static execution: books concrete processors for a precomputed schedule.

use crate::error::SimError;
use crate::trace::{Event, EventKind, Trace};
use mtsp_core::Schedule;
use mtsp_model::Instance;

/// Result of a successful static execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Concrete processor ids per task (sorted ascending).
    pub assignment: Vec<Vec<usize>>,
    /// Busy time accumulated per processor.
    pub busy: Vec<f64>,
    /// The realized makespan (equals the schedule's).
    pub makespan: f64,
    /// The event trace.
    pub trace: Trace,
}

impl SimReport {
    /// Machine utilization `Σ busy / (m · makespan)`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (self.busy.len() as f64 * self.makespan)
    }
}

/// Executes `schedule` on a machine with `ins.m()` explicitly tracked
/// processors: start events acquire the lowest-numbered free processors,
/// finish events release them. Also enforces precedence on the realized
/// times. Any violation is an error — this is the mechanism-level check
/// complementing [`mtsp_core::Schedule::verify`].
pub fn execute(ins: &Instance, schedule: &Schedule) -> Result<SimReport, SimError> {
    let n = schedule.n();
    let m = ins.m();
    if n != ins.n() || schedule.m() != m {
        return Err(SimError::ShapeMismatch(format!(
            "schedule ({} tasks, m={}) vs instance ({} tasks, m={})",
            n,
            schedule.m(),
            ins.n(),
            m
        )));
    }
    // Precedence on realized times.
    for (i, j) in ins.dag().edges() {
        if schedule.task(i).finish() > schedule.task(j).start + 1e-9 {
            return Err(SimError::PrecedenceViolation { pred: i, succ: j });
        }
    }
    // Event list: (time, is_start, task). Finishes sort before starts at
    // equal times so released processors are immediately reusable.
    let mut events: Vec<(f64, bool, usize)> = Vec::with_capacity(2 * n);
    for j in 0..n {
        let t = schedule.task(j);
        if t.duration > 0.0 {
            events.push((t.start, true, j));
            events.push((t.finish(), false, j));
        }
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(a.1.cmp(&b.1)) // false (finish) < true (start)
            .then(a.2.cmp(&b.2))
    });

    let mut free: Vec<bool> = vec![true; m];
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut busy = vec![0.0f64; m];
    let mut trace = Trace::default();
    for (time, is_start, j) in events {
        if is_start {
            let need = schedule.task(j).alloc;
            let mut got = Vec::with_capacity(need);
            for (p, f) in free.iter_mut().enumerate() {
                if *f {
                    got.push(p);
                    *f = false;
                    if got.len() == need {
                        break;
                    }
                }
            }
            if got.len() < need {
                // Roll back the partial acquisition before reporting.
                let free_now = got.len() + free.iter().filter(|&&f| f).count();
                for p in got {
                    free[p] = true;
                }
                return Err(SimError::CapacityViolation {
                    task: j,
                    time,
                    requested: need,
                    free: free_now,
                });
            }
            for &p in &got {
                busy[p] += schedule.task(j).duration;
            }
            assignment[j] = got.clone();
            trace.events.push(Event {
                time,
                kind: EventKind::Start {
                    task: j,
                    procs: got,
                },
            });
        } else {
            for &p in &assignment[j] {
                free[p] = true;
            }
            trace.events.push(Event {
                time,
                kind: EventKind::Finish { task: j },
            });
        }
    }
    Ok(SimReport {
        assignment,
        busy,
        makespan: schedule.makespan(),
        trace,
    })
}

/// Like [`execute`], but every task must occupy a **contiguous** block of
/// processor ids (first-fit lowest base) — the allocation discipline of
/// partitionable machines discussed in the paper's related work (Jansen &
/// Thöle). Counts-feasible schedules can fail here through fragmentation,
/// which [`SimError::FragmentationViolation`] reports; the experiment
/// harness uses this to measure how often count-based schedules survive a
/// contiguity requirement.
pub fn execute_contiguous(ins: &Instance, schedule: &Schedule) -> Result<SimReport, SimError> {
    let n = schedule.n();
    let m = ins.m();
    if n != ins.n() || schedule.m() != m {
        return Err(SimError::ShapeMismatch(format!(
            "schedule ({} tasks, m={}) vs instance ({} tasks, m={})",
            n,
            schedule.m(),
            ins.n(),
            m
        )));
    }
    for (i, j) in ins.dag().edges() {
        if schedule.task(i).finish() > schedule.task(j).start + 1e-9 {
            return Err(SimError::PrecedenceViolation { pred: i, succ: j });
        }
    }
    let mut events: Vec<(f64, bool, usize)> = Vec::with_capacity(2 * n);
    for j in 0..n {
        let t = schedule.task(j);
        if t.duration > 0.0 {
            events.push((t.start, true, j));
            events.push((t.finish(), false, j));
        }
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });

    let mut free: Vec<bool> = vec![true; m];
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut busy = vec![0.0f64; m];
    let mut trace = Trace::default();
    for (time, is_start, j) in events {
        if is_start {
            let need = schedule.task(j).alloc;
            // First-fit contiguous block.
            let mut base = None;
            let mut run = 0usize;
            let mut largest = 0usize;
            for (p, &f) in free.iter().enumerate() {
                if f {
                    run += 1;
                    largest = largest.max(run);
                    if run == need && base.is_none() {
                        base = Some(p + 1 - need);
                    }
                } else {
                    run = 0;
                }
            }
            let Some(base) = base else {
                let total_free = free.iter().filter(|&&f| f).count();
                return Err(if total_free >= need {
                    SimError::FragmentationViolation {
                        task: j,
                        time,
                        requested: need,
                        largest_block: largest,
                    }
                } else {
                    SimError::CapacityViolation {
                        task: j,
                        time,
                        requested: need,
                        free: total_free,
                    }
                });
            };
            let got: Vec<usize> = (base..base + need).collect();
            for &p in &got {
                free[p] = false;
                busy[p] += schedule.task(j).duration;
            }
            assignment[j] = got.clone();
            trace.events.push(Event {
                time,
                kind: EventKind::Start {
                    task: j,
                    procs: got,
                },
            });
        } else {
            for &p in &assignment[j] {
                free[p] = true;
            }
            trace.events.push(Event {
                time,
                kind: EventKind::Finish { task: j },
            });
        }
    }
    Ok(SimReport {
        assignment,
        busy,
        makespan: schedule.makespan(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_core::two_phase::schedule_jz;
    use mtsp_core::{list_schedule, Priority, ScheduledTask};
    use mtsp_model::{generate as igen, Profile};

    #[test]
    fn executes_algorithm_output_end_to_end() {
        for seed in 0..5 {
            let ins = igen::random_instance(
                igen::DagFamily::Layered,
                igen::CurveFamily::Mixed,
                20,
                8,
                seed,
            );
            let rep = schedule_jz(&ins).unwrap();
            let sim = execute(&ins, &rep.schedule).expect("feasible schedule must execute");
            assert!(sim.trace.is_consistent(8), "seed {seed}");
            assert!((sim.makespan - rep.schedule.makespan()).abs() < 1e-9);
            // Busy time accounting equals total work.
            let total_busy: f64 = sim.busy.iter().sum();
            assert!(
                (total_busy - rep.schedule.total_work()).abs() < 1e-6,
                "seed {seed}"
            );
            // Every task got exactly its allotment of distinct processors.
            for (j, procs) in sim.assignment.iter().enumerate() {
                assert_eq!(procs.len(), rep.schedule.task(j).alloc);
            }
            assert!(sim.utilization() > 0.0 && sim.utilization() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn detects_capacity_violation() {
        let profiles = vec![Profile::constant(2.0, 2).unwrap(); 2];
        let ins = mtsp_model::Instance::new(mtsp_dag::generate::independent(2), profiles).unwrap();
        let bad = Schedule::new(
            2,
            vec![
                ScheduledTask {
                    start: 0.0,
                    alloc: 2,
                    duration: 2.0,
                },
                ScheduledTask {
                    start: 1.0,
                    alloc: 1,
                    duration: 2.0,
                },
            ],
        );
        match execute(&ins, &bad) {
            Err(SimError::CapacityViolation { task: 1, .. }) => {}
            other => panic!("expected capacity violation, got {other:?}"),
        }
    }

    #[test]
    fn detects_precedence_violation() {
        let dag = mtsp_dag::Dag::from_edges(2, &[(0, 1)]).unwrap();
        let profiles = vec![Profile::constant(2.0, 2).unwrap(); 2];
        let ins = mtsp_model::Instance::new(dag, profiles).unwrap();
        let bad = Schedule::new(
            2,
            vec![
                ScheduledTask {
                    start: 0.0,
                    alloc: 1,
                    duration: 2.0,
                },
                ScheduledTask {
                    start: 1.0,
                    alloc: 1,
                    duration: 2.0,
                },
            ],
        );
        assert!(matches!(
            execute(&ins, &bad),
            Err(SimError::PrecedenceViolation { pred: 0, succ: 1 })
        ));
    }

    #[test]
    fn detects_shape_mismatch() {
        let profiles = vec![Profile::constant(1.0, 2).unwrap()];
        let ins = mtsp_model::Instance::new(mtsp_dag::generate::independent(1), profiles).unwrap();
        let s = Schedule::new(3, vec![]);
        assert!(matches!(execute(&ins, &s), Err(SimError::ShapeMismatch(_))));
    }

    #[test]
    fn contiguous_execution_of_algorithm_output() {
        // LIST output is usually contiguously executable because the
        // first-fit of `execute` already produces low-fragmentation
        // placements; verify it on a couple of instances.
        for seed in 0..3 {
            let ins = igen::random_instance(
                igen::DagFamily::Layered,
                igen::CurveFamily::PowerLaw,
                12,
                4,
                seed,
            );
            let rep = schedule_jz(&ins).unwrap();
            match execute_contiguous(&ins, &rep.schedule) {
                Ok(sim) => {
                    assert!(sim.trace.is_consistent(4));
                    // Each assignment is a contiguous id range.
                    for procs in sim.assignment.iter().filter(|p| !p.is_empty()) {
                        for w in procs.windows(2) {
                            assert_eq!(w[1], w[0] + 1);
                        }
                    }
                }
                Err(SimError::FragmentationViolation { .. }) => {
                    // Acceptable: counts-feasible but fragmented.
                }
                Err(other) => panic!("seed {seed}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn fragmentation_is_detected() {
        // m = 3: tasks on procs {0} and {2}-ish force a split; a width-2
        // task then has 2 free processors but no contiguous block.
        let profiles = vec![
            Profile::constant(4.0, 3).unwrap(),
            Profile::constant(1.0, 3).unwrap(),
            Profile::from_times(vec![9.0, 2.0, 2.0]).unwrap(),
        ];
        let ins = mtsp_model::Instance::new(mtsp_dag::generate::independent(3), profiles).unwrap();
        // Handcrafted: task 0 on 1 proc [0,4), task 1 on 1 proc [0,1),
        // task 2 (2 procs) starts at 1. With first-fit task 0 -> p0,
        // task 1 -> p1; at t=1 free = {p1, p2}: contiguous! So instead:
        // task 1 long on middle: place task 0 [0,1) one proc, task 1 [0,4)
        // one proc, task 2 needs 2 at t=1: free = {p0, p2} -> fragmented.
        let s = Schedule::new(
            3,
            vec![
                ScheduledTask {
                    start: 0.0,
                    alloc: 1,
                    duration: 4.0,
                },
                ScheduledTask {
                    start: 0.0,
                    alloc: 1,
                    duration: 1.0,
                },
                ScheduledTask {
                    start: 1.0,
                    alloc: 2,
                    duration: 2.0,
                },
            ],
        );
        // Force task 1 onto the middle processor by swapping alloc order:
        // first-fit gives task 0 -> p0, task 1 -> p1; at t=1 free = p1,p2
        // (contiguous). To get fragmentation, make task 1 run on p1 for
        // longer than task 0... use durations: task 0 short on p0, task 1
        // long on p1; then at t=1, free = {p0, p2}: fragmented for width 2.
        let profiles2 = vec![
            Profile::constant(1.0, 3).unwrap(),
            Profile::constant(4.0, 3).unwrap(),
            Profile::from_times(vec![9.0, 2.0, 2.0]).unwrap(),
        ];
        let ins2 =
            mtsp_model::Instance::new(mtsp_dag::generate::independent(3), profiles2).unwrap();
        let s2 = Schedule::new(
            3,
            vec![
                ScheduledTask {
                    start: 0.0,
                    alloc: 1,
                    duration: 1.0,
                },
                ScheduledTask {
                    start: 0.0,
                    alloc: 1,
                    duration: 4.0,
                },
                ScheduledTask {
                    start: 1.0,
                    alloc: 2,
                    duration: 2.0,
                },
            ],
        );
        // The counts-based executor accepts it...
        assert!(execute(&ins2, &s2).is_ok());
        // ...but the contiguous one reports fragmentation.
        match execute_contiguous(&ins2, &s2) {
            Err(SimError::FragmentationViolation {
                task: 2,
                requested: 2,
                largest_block: 1,
                ..
            }) => {}
            other => panic!("expected fragmentation, got {other:?}"),
        }
        let _ = (ins, s);
    }

    #[test]
    fn back_to_back_reuse_of_processors() {
        // Finish and start at the same instant must reuse processors.
        let dag = mtsp_dag::generate::chain(3);
        let profiles = vec![Profile::constant(1.0, 2).unwrap(); 3];
        let ins = mtsp_model::Instance::new(dag, profiles).unwrap();
        let s = list_schedule(&ins, &[2, 2, 2], Priority::TaskId);
        let sim = execute(&ins, &s).unwrap();
        assert!(sim.trace.is_consistent(2));
        assert!((sim.makespan - 3.0).abs() < 1e-9);
        assert!((sim.utilization() - 1.0).abs() < 1e-9);
    }
}
