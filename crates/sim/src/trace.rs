//! Execution traces: time-ordered start/finish events with concrete
//! processor assignments.

/// What happened at an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Task started on the listed processors.
    Start {
        /// Task id.
        task: usize,
        /// Concrete processor ids occupied (sorted ascending).
        procs: Vec<usize>,
    },
    /// Task finished, releasing its processors.
    Finish {
        /// Task id.
        task: usize,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time.
    pub time: f64,
    /// The event.
    pub kind: EventKind,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by time (starts after finishes at equal times).
    pub events: Vec<Event>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(self.events.len() * 48);
        for e in &self.events {
            match &e.kind {
                EventKind::Start { task, procs } => {
                    let _ = writeln!(
                        s,
                        "{:>12.4}  start  task {task:>4} on procs {procs:?}",
                        e.time
                    );
                }
                EventKind::Finish { task } => {
                    let _ = writeln!(s, "{:>12.4}  finish task {task:>4}", e.time);
                }
            }
        }
        s
    }

    /// Checks internal consistency: events sorted by time, every start has
    /// a matching later finish, processors never double-booked.
    pub fn is_consistent(&self, m: usize) -> bool {
        let mut owner: Vec<Option<usize>> = vec![None; m];
        let mut last_t = f64::NEG_INFINITY;
        let mut open: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            if e.time < last_t - 1e-9 {
                return false;
            }
            last_t = last_t.max(e.time);
            match &e.kind {
                EventKind::Start { task, procs } => {
                    for &p in procs {
                        if p >= m || owner[p].is_some() {
                            return false;
                        }
                        owner[p] = Some(*task);
                    }
                    if open.insert(*task, procs.clone()).is_some() {
                        return false;
                    }
                }
                EventKind::Finish { task } => {
                    let Some(procs) = open.remove(task) else {
                        return false;
                    };
                    for p in procs {
                        if owner[p] != Some(*task) {
                            return false;
                        }
                        owner[p] = None;
                    }
                }
            }
        }
        open.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(t: f64, task: usize, procs: Vec<usize>) -> Event {
        Event {
            time: t,
            kind: EventKind::Start { task, procs },
        }
    }

    fn finish(t: f64, task: usize) -> Event {
        Event {
            time: t,
            kind: EventKind::Finish { task },
        }
    }

    #[test]
    fn consistent_trace_accepted() {
        let tr = Trace {
            events: vec![
                start(0.0, 0, vec![0, 1]),
                finish(1.0, 0),
                start(1.0, 1, vec![0]),
                finish(3.0, 1),
            ],
        };
        assert!(tr.is_consistent(2));
        assert_eq!(tr.len(), 4);
        assert!(!tr.is_empty());
        let text = tr.render();
        assert!(text.contains("start  task    0"));
        assert!(text.contains("finish task    1"));
    }

    #[test]
    fn double_booking_rejected() {
        let tr = Trace {
            events: vec![start(0.0, 0, vec![0]), start(0.5, 1, vec![0])],
        };
        assert!(!tr.is_consistent(1));
    }

    #[test]
    fn unmatched_finish_rejected() {
        let tr = Trace {
            events: vec![finish(1.0, 0)],
        };
        assert!(!tr.is_consistent(1));
    }

    #[test]
    fn unsorted_rejected() {
        let tr = Trace {
            events: vec![start(1.0, 0, vec![0]), finish(0.5, 0)],
        };
        assert!(!tr.is_consistent(1));
    }

    #[test]
    fn dangling_start_rejected() {
        let tr = Trace {
            events: vec![start(0.0, 0, vec![0])],
        };
        assert!(!tr.is_consistent(1));
    }
}
