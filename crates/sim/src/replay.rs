//! Event-driven replay of an arrival [`Scenario`] through a
//! [`ScheduleSession`] — the online counterpart of [`crate::online`].
//!
//! The replay plays executor to the session's planner: it walks the
//! scenario's event stream (task arrivals with their edges, machine-count
//! changes) interleaved with realized completions, asks the session to
//! **re-plan the not-yet-started suffix at every epoch** (any batch of
//! arrivals or a machine change), and dispatches pending tasks greedily —
//! LIST with the session's current allotments — with realized durations
//! `p_j(l_j) · ξ_j` under a [`NoiseModel`].
//!
//! Two contracts anchor it to the rest of the workspace:
//!
//! * **batch equivalence** — replaying [`Scenario::batch`]`(ins)` with
//!   [`NoiseModel::None`] reproduces `mtsp_core::list_schedule` on the
//!   session's (= the batch pipeline's) allotments *bit-exactly*;
//! * **determinism** — the realized schedule and every epoch's plan are
//!   pure functions of `(scenario, config, seed)`; warm LP contexts only
//!   change re-plan latency, never a byte (asserted in tests).

use crate::error::SimError;
use crate::online::{draw_noise_factors, NoiseModel};
use mtsp_core::{Ord64, Priority, Schedule, ScheduledTask};
use mtsp_dag::{paths, Dag};
use mtsp_engine::{ScheduleSession, SessionConfig};
use mtsp_model::textio::Scenario;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Replay configuration.
#[derive(Debug, Clone, Default)]
pub struct ReplayConfig {
    /// Planner configuration (phase-1 formulation, parameters, context
    /// reuse; the dispatch tie-break comes from `session.jz.priority`).
    pub session: SessionConfig,
    /// Execution-time noise applied to realized durations.
    pub noise: NoiseModel,
    /// Noise seed (one factor per task, drawn in task-id order).
    pub seed: u64,
}

/// One epoch of the replay: re-plan trigger counts plus the session's
/// epoch stats. `wall` is wall-clock re-plan latency — non-deterministic,
/// so reports must exclude it.
#[derive(Debug, Clone, Copy)]
pub struct EpochTrace {
    /// Event time of the epoch.
    pub time: f64,
    /// Tasks that arrived at this epoch.
    pub arrivals: usize,
    /// Whether a machine-count change triggered (or co-triggered) it.
    pub machine_change: bool,
    /// Pending tasks re-planned.
    pub pending: usize,
    /// The suffix LP bound on the residual makespan (relative to `time`).
    pub cstar: f64,
    /// Simplex iterations of the re-solve.
    pub lp_iterations: usize,
    /// Deterministic counter delta of the epoch (see
    /// [`mtsp_engine::EpochStats::counters`]).
    pub counters: mtsp_obs::Counters,
    /// Re-plan wall-clock latency (non-deterministic).
    pub wall: Duration,
}

/// Everything one replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The realized schedule (starts, frozen allotments, realized
    /// durations), indexed by scenario task id.
    pub schedule: Schedule,
    /// Realized makespan.
    pub makespan: f64,
    /// One trace entry per re-plan epoch.
    pub epochs: Vec<EpochTrace>,
    /// Total re-plan wall-clock time (non-deterministic).
    pub replan_wall: Duration,
}

impl ReplayOutcome {
    /// Sum of epoch LP iterations (deterministic latency proxy).
    pub fn lp_iterations(&self) -> usize {
        self.epochs.iter().map(|e| e.lp_iterations).sum()
    }
}

const fn tol(t: f64) -> f64 {
    1e-12 * (1.0 + t.abs())
}

/// Replays `scenario` through a fresh [`ScheduleSession`]. See the module
/// docs for the contract.
pub fn replay(scenario: &Scenario, cfg: &ReplayConfig) -> Result<ReplayOutcome, SimError> {
    let ins = &scenario.ins;
    let n = ins.n();
    let m_profile = ins.m();
    let xi = draw_noise_factors(cfg.noise, n, cfg.seed)?;
    let fail = |e: mtsp_engine::SessionError| SimError::ReplayFailure(e.to_string());
    let mut session = ScheduleSession::new(m_profile, cfg.session.clone()).map_err(fail)?;
    let priority = session.config().jz.priority;

    // Arrival order: task ids stably sorted by arrival time. Ties keep id
    // order, so a batch of simultaneous arrivals is numbered by the
    // session exactly like the scenario numbers it — `Scenario::batch`
    // replays then hand the planner the *identical* LP the batch pipeline
    // solves (not a permutation of it, whose degenerate optima a solver
    // may break differently), which is what makes the batch-equivalence
    // contract bit-exact by construction. Edges are attached after the
    // whole tie-batch has arrived (arrivals respect precedence, a
    // `Scenario::new` invariant, so a pred is never in a *later* batch).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scenario.arrival[a]
            .partial_cmp(&scenario.arrival[b])
            .expect("scenario arrivals are finite")
    });

    // Executor state, indexed by scenario task id.
    let mut sess_of = vec![usize::MAX; n];
    let mut arrived = vec![false; n];
    let mut unfinished_preds: Vec<usize> = vec![0; n];
    let mut ready_time = vec![0.0f64; n];
    let mut finished = vec![false; n];
    let mut prio = vec![0.0f64; n];
    let mut placed = vec![
        ScheduledTask {
            start: 0.0,
            alloc: 1,
            duration: 0.0,
        };
        n
    ];
    let mut available: BinaryHeap<Reverse<(Ord64, Ord64, usize)>> = BinaryHeap::new();
    let mut waiting: Vec<usize> = Vec::new();
    let mut newly_ready: Vec<usize> = Vec::new();
    let mut running: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
    let mut epochs: Vec<EpochTrace> = Vec::new();

    let mut m_active = m_profile;
    let mut busy = 0usize;
    let mut next_arr = 0usize;
    let mut next_mev = 0usize;
    let mut done = 0usize;
    let mut now = f64::NEG_INFINITY;

    // The planner's dispatch priorities, recomputed at every epoch from
    // what it knows and nothing more: planned/frozen allotments (1 before
    // the first plan covering a task), and — for bottom levels — only the
    // *arrived* subgraph. Folding in unarrived tasks would make the
    // dispatcher clairvoyant and bias the online-vs-batch ratio.
    let recompute_prio =
        |prio: &mut Vec<f64>, session: &ScheduleSession, sess_of: &[usize]| match priority {
            Priority::TaskId => {
                for (j, p) in prio.iter_mut().enumerate() {
                    *p = -(j as f64);
                }
            }
            Priority::BottomLevel => {
                let arrived_ids: Vec<usize> =
                    (0..n).filter(|&j| sess_of[j] != usize::MAX).collect();
                let mut local = vec![usize::MAX; n];
                for (k, &j) in arrived_ids.iter().enumerate() {
                    local[j] = k;
                }
                // Predecessors always arrive no later than successors, so
                // every edge of an arrived task is inside the subgraph.
                let mut sub = Dag::new(arrived_ids.len());
                for &j in &arrived_ids {
                    for &i in ins.dag().preds(j) {
                        sub.add_edge_unchecked(local[i], local[j])
                            .expect("arrived-subgraph edges are in range");
                    }
                }
                let durations: Vec<f64> = arrived_ids
                    .iter()
                    .map(|&j| {
                        let l = alloc_of(session, sess_of, j).unwrap_or(1);
                        ins.profile(j).time(l)
                    })
                    .collect();
                let levels = paths::bottom_levels(&sub, &durations);
                prio.iter_mut().for_each(|p| *p = 0.0);
                for (k, &j) in arrived_ids.iter().enumerate() {
                    prio[j] = levels[k];
                }
            }
            Priority::WidestFirst => {
                for (j, p) in prio.iter_mut().enumerate() {
                    *p = alloc_of(session, sess_of, j).unwrap_or(1) as f64;
                }
            }
        };

    while done < n {
        // Next event: a realized completion, an arrival, or a machine
        // change.
        let next_finish = running
            .peek()
            .map(|&Reverse((f, _))| f.0)
            .unwrap_or(f64::INFINITY);
        let next_arrival = order
            .get(next_arr)
            .map(|&j| scenario.arrival[j])
            .unwrap_or(f64::INFINITY);
        let next_machine = scenario
            .machine_events
            .get(next_mev)
            .map(|&(t, _)| t)
            .unwrap_or(f64::INFINITY);
        let next = next_finish.min(next_arrival).min(next_machine);
        if !next.is_finite() {
            return Err(SimError::ReplayFailure(format!(
                "replay stalled at t = {now}: {done}/{n} tasks finished, nothing running and no \
                 events left"
            )));
        }
        now = if now.is_finite() { now.max(next) } else { next };

        // Realized completions at `now`.
        while let Some(&Reverse((f, j))) = running.peek() {
            if f.0 > now + tol(now) {
                break;
            }
            running.pop();
            busy -= placed[j].alloc;
            finished[j] = true;
            done += 1;
            session.mark_finished(sess_of[j], f.0).map_err(fail)?;
            for &s in ins.dag().succs(j) {
                ready_time[s] = ready_time[s].max(f.0);
                // Successors that have not arrived yet count their
                // unfinished predecessors at arrival time instead.
                if arrived[s] {
                    unfinished_preds[s] -= 1;
                    if unfinished_preds[s] == 0 {
                        newly_ready.push(s);
                    }
                }
            }
        }

        // Machine-count changes at `now`.
        let mut machine_change = false;
        while next_mev < scenario.machine_events.len()
            && scenario.machine_events[next_mev].0 <= now + tol(now)
        {
            let (t, m_new) = scenario.machine_events[next_mev];
            session.set_machines(m_new, t).map_err(fail)?;
            m_active = m_new;
            machine_change = true;
            next_mev += 1;
        }

        // Arrivals at `now`: the whole tie-batch arrives in id order
        // first, then its edges — a pred arriving simultaneously may
        // carry a larger id than its successor.
        let batch_start = next_arr;
        while next_arr < order.len() && scenario.arrival[order[next_arr]] <= now + tol(now) {
            let j = order[next_arr];
            let t = scenario.arrival[j];
            sess_of[j] = session.arrive(ins.profile(j).clone(), t).map_err(fail)?;
            arrived[j] = true;
            ready_time[j] = ready_time[j].max(t);
            next_arr += 1;
        }
        let arrivals = next_arr - batch_start;
        for &j in &order[batch_start..next_arr] {
            let t = scenario.arrival[j];
            for &i in ins.dag().preds(j) {
                if !finished[i] {
                    unfinished_preds[j] += 1;
                }
                session
                    .add_dependency(sess_of[i], sess_of[j], t)
                    .map_err(fail)?;
            }
            if unfinished_preds[j] == 0 {
                newly_ready.push(j);
            }
        }

        // Epoch: any structural event re-plans the pending suffix.
        if arrivals > 0 || machine_change {
            let stats = *session.replan(now).map_err(fail)?;
            recompute_prio(&mut prio, &session, &sess_of);
            epochs.push(EpochTrace {
                time: stats.time,
                arrivals,
                machine_change,
                pending: stats.pending,
                cstar: stats.cstar,
                lp_iterations: stats.lp_iterations,
                counters: stats.counters,
                wall: stats.wall,
            });
        }

        // Dispatch: greedy LIST over ready tasks under the current plan.
        for j in waiting.drain(..).chain(newly_ready.drain(..)) {
            available.push(Reverse((Ord64(ready_time[j]), Ord64(-prio[j]), j)));
        }
        let mut deferred = Vec::new();
        while let Some(&Reverse((rt, _, j))) = available.peek() {
            if rt.0 > now + tol(now) {
                break;
            }
            available.pop();
            let free = m_active.saturating_sub(busy);
            let l = session.planned_alloc(sess_of[j]);
            if l.is_some_and(|l| l <= free) {
                let l = session.mark_started(sess_of[j], now).map_err(fail)?;
                let realized = ins.profile(j).time(l) * xi[j];
                placed[j] = ScheduledTask {
                    start: now,
                    alloc: l,
                    duration: realized,
                };
                busy += l;
                running.push(Reverse((Ord64(now + realized), j)));
            } else {
                deferred.push(j);
            }
        }
        waiting = deferred;
    }

    let schedule = Schedule::new(m_profile, placed);
    let makespan = schedule.makespan();
    let replan_wall = epochs.iter().map(|e| e.wall).sum();
    Ok(ReplayOutcome {
        schedule,
        makespan,
        epochs,
        replan_wall,
    })
}

fn alloc_of(session: &ScheduleSession, sess_of: &[usize], j: usize) -> Option<usize> {
    let s = *sess_of.get(j)?;
    if s == usize::MAX {
        return None;
    }
    session.planned_alloc(s)
}

/// Structural feasibility of a realized replay schedule against its
/// scenario: no task starts before its arrival or before a predecessor's
/// realized completion; every task's allotment fits the machine count
/// *active at its start*; and the busy processors never exceed the
/// profile domain. (After a machine-count drop, tasks started earlier
/// legitimately keep their processors until they drain — so instantaneous
/// busy counts are bounded by the old machine count, not the new one.)
pub fn replay_feasible(scenario: &Scenario, s: &Schedule) -> bool {
    let eps = 1e-9;
    let machine_at = |t: f64| -> usize {
        let mut m = scenario.ins.m();
        for &(et, em) in &scenario.machine_events {
            if et <= t + eps {
                m = em;
            } else {
                break;
            }
        }
        m
    };
    for j in 0..scenario.ins.n() {
        let t = s.task(j);
        if t.start + eps < scenario.arrival[j] || t.alloc > machine_at(t.start) {
            return false;
        }
    }
    for (i, j) in scenario.ins.dag().edges() {
        if s.task(i).finish() > s.task(j).start + eps {
            return false;
        }
    }
    s.slot_profile(1)
        .intervals
        .iter()
        .all(|&(_, _, b, _)| b <= scenario.ins.m())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_core::two_phase::{schedule_jz, JzConfig, Phase1};
    use mtsp_core::{list_schedule, Priority};
    use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
    use mtsp_model::Instance;

    fn random(n: usize, m: usize, seed: u64) -> Instance {
        random_instance(DagFamily::Layered, CurveFamily::Mixed, n, m, seed)
    }

    /// The anchor: a batch scenario with zero noise reproduces the batch
    /// pipeline bit-exactly — session allotments equal `schedule_jz`'s,
    /// and the realized schedule equals `list_schedule` on them.
    #[test]
    fn batch_scenario_reproduces_list_schedule_bit_exactly() {
        for seed in 0..4 {
            let ins = random(20, 6, seed);
            let rep = schedule_jz(&ins).unwrap();
            for prio in [
                Priority::TaskId,
                Priority::BottomLevel,
                Priority::WidestFirst,
            ] {
                let cfg = ReplayConfig {
                    session: SessionConfig {
                        jz: JzConfig {
                            priority: prio,
                            ..JzConfig::default()
                        },
                        ..SessionConfig::new()
                    },
                    noise: NoiseModel::None,
                    seed,
                };
                let out = replay(&Scenario::batch(ins.clone()), &cfg).unwrap();
                assert_eq!(out.schedule.allotments(), rep.alloc, "seed {seed} {prio:?}");
                let expect = list_schedule(&ins, &rep.alloc, prio);
                assert_eq!(out.schedule, expect, "seed {seed} {prio:?}");
                assert_eq!(out.epochs.len(), 1);
            }
        }
    }

    /// Staggered arrivals under noise stay feasible and deterministic,
    /// with one epoch per distinct arrival time, warm or cold.
    #[test]
    fn staggered_arrivals_are_feasible_and_warm_cold_identical() {
        let ins = random(16, 4, 11);
        let order = ins.dag().topological_order();
        let mut arrival = vec![0.0; ins.n()];
        for (k, &j) in order.iter().enumerate() {
            arrival[j] = (k / 4) as f64 * 0.75;
        }
        let sc = Scenario::new(ins, arrival, Vec::new()).unwrap();
        let mut times: Vec<u64> = sc.arrival.iter().map(|t| t.to_bits()).collect();
        times.sort_unstable();
        times.dedup();
        let distinct_arrivals = times.len();
        let run = |reuse_context: bool, phase1: Phase1| {
            let cfg = ReplayConfig {
                session: SessionConfig {
                    jz: JzConfig {
                        phase1,
                        ..JzConfig::default()
                    },
                    reuse_context,
                    ..SessionConfig::new()
                },
                noise: NoiseModel::Uniform { epsilon: 0.2 },
                seed: 5,
            };
            replay(&sc, &cfg).unwrap()
        };
        for phase1 in [Phase1::Lp, Phase1::Bisection] {
            let warm = run(true, phase1);
            let cold = run(false, phase1);
            assert_eq!(warm.schedule, cold.schedule, "{phase1:?}");
            assert_eq!(warm.epochs.len(), distinct_arrivals, "{phase1:?}");
            assert!(replay_feasible(&sc, &warm.schedule), "{phase1:?}");
            for e in &warm.epochs {
                assert!(e.cstar.is_finite() && e.cstar >= 0.0);
            }
            // Later epochs re-plan strictly fewer tasks than arrived in
            // total: the committed prefix is frozen.
            assert!(warm.epochs[3].pending <= sc.ins.n());
        }
    }

    /// A machine-count drop mid-stream triggers an epoch and the replay
    /// respects the reduced capacity from that point on.
    #[test]
    fn machine_change_replans_and_respects_capacity() {
        let ins = random_instance(DagFamily::Independent, CurveFamily::PowerLaw, 8, 4, 3);
        let sc = Scenario::new(ins.clone(), vec![0.0; 8], vec![(0.5, 2)]).unwrap();
        let out = replay(&sc, &ReplayConfig::default()).unwrap();
        assert!(replay_feasible(&sc, &out.schedule));
        assert!(out.epochs.iter().any(|e| e.machine_change));
        for j in 0..8 {
            let t = out.schedule.task(j);
            if t.start >= 0.5 {
                assert!(t.alloc <= 2, "task {j} started wide after the drop");
            }
        }
        // Busy processors after the drop (and after pre-drop tasks have
        // drained) stay within the reduced machine.
        let profile = out.schedule.slot_profile(1);
        let drained = out
            .schedule
            .tasks()
            .iter()
            .filter(|t| t.start < 0.5)
            .map(|t| t.finish())
            .fold(0.0f64, f64::max);
        for &(lo, _, b, _) in &profile.intervals {
            if lo >= drained - 1e-9 {
                assert!(b <= 2, "busy {b} > 2 at t = {lo}");
            }
        }
    }

    #[test]
    fn invalid_noise_is_rejected_with_a_sim_error() {
        let ins = random(6, 2, 0);
        let cfg = ReplayConfig {
            noise: NoiseModel::Uniform { epsilon: 1.5 },
            ..ReplayConfig::default()
        };
        match replay(&Scenario::batch(ins), &cfg) {
            Err(SimError::InvalidNoise { kind, .. }) => assert_eq!(kind, "uniform"),
            other => panic!("expected InvalidNoise, got {other:?}"),
        }
    }
}
