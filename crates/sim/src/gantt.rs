//! ASCII Gantt charts: one row per *physical* processor, built from the
//! concrete assignment of [`crate::executor::execute`].

use crate::executor::SimReport;
use mtsp_core::Schedule;

/// Renders a per-processor Gantt chart, `width` characters of time axis.
/// Each busy cell shows the last decimal digit of the task id; idle cells
/// are `.`. Block boundaries at this resolution may merge visually for
/// very short tasks — the chart is a reading aid, not a data artifact.
pub fn gantt(schedule: &Schedule, report: &SimReport, width: usize) -> String {
    use std::fmt::Write as _;
    let m = report.busy.len();
    let makespan = report.makespan;
    let mut s = String::new();
    if makespan <= 0.0 || width == 0 {
        let _ = writeln!(s, "(empty schedule)");
        return s;
    }
    // Per-processor timeline: rows[p][c] = char.
    let mut rows = vec![vec!['.'; width]; m];
    for (j, procs) in report.assignment.iter().enumerate() {
        let t = schedule.task(j);
        if t.duration <= 0.0 {
            continue;
        }
        let c0 = ((t.start / makespan) * width as f64).floor() as usize;
        let c1 = (((t.finish()) / makespan) * width as f64).ceil() as usize;
        let c1 = c1.clamp(c0 + 1, width);
        let ch = char::from_digit((j % 10) as u32, 10).expect("digit");
        for &p in procs {
            for cell in rows[p][c0..c1].iter_mut() {
                *cell = ch;
            }
        }
    }
    let _ = writeln!(
        s,
        "time 0 {:-^w$} {makespan:.3}",
        "",
        w = width.saturating_sub(2)
    );
    for (p, row) in rows.iter().enumerate() {
        let _ = writeln!(s, "p{p:<3} {}", row.iter().collect::<String>());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use mtsp_core::{list_schedule, Priority};
    use mtsp_model::{Instance, Profile};

    fn setup() -> (Instance, Schedule, SimReport) {
        let dag = mtsp_dag::generate::chain(2);
        let profiles = vec![Profile::constant(1.0, 2).unwrap(); 2];
        let ins = Instance::new(dag, profiles).unwrap();
        let s = list_schedule(&ins, &[2, 1], Priority::TaskId);
        let r = execute(&ins, &s).unwrap();
        (ins, s, r)
    }

    #[test]
    fn chart_has_one_row_per_processor() {
        let (_, s, r) = setup();
        let chart = gantt(&s, &r, 40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 processors
        assert!(lines[1].starts_with("p0"));
        assert!(lines[2].starts_with("p1"));
        // Task 0 occupies both processors in the first half.
        assert!(lines[1].contains('0'));
        assert!(lines[2].contains('0'));
        // Task 1 occupies exactly one processor in the second half.
        let ones = lines[1].matches('1').count() + lines[2].matches('1').count();
        assert!(ones > 0);
    }

    #[test]
    fn idle_time_rendered_as_dots() {
        let (_, s, r) = setup();
        let chart = gantt(&s, &r, 40);
        assert!(
            chart.contains('.'),
            "one processor idles in the second half"
        );
    }

    #[test]
    fn empty_schedule_handled() {
        let s = Schedule::new(2, vec![]);
        let r = SimReport {
            assignment: vec![],
            busy: vec![0.0; 2],
            makespan: 0.0,
            trace: crate::trace::Trace::default(),
        };
        assert!(gantt(&s, &r, 30).contains("empty"));
    }
}
