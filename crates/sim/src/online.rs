//! Online replay of the LIST policy under execution-time noise.
//!
//! The phase-1 allotment is a *plan*; on a real machine the realized
//! processing times deviate from the model's `p_j(l)`. This module
//! re-executes the greedy list policy event by event with realized
//! durations `p_j(l_j) · ξ_j`, where `ξ_j` is a per-task noise factor. The
//! resulting makespan measures how robust the allotment decision is
//! (experiment E4 in DESIGN.md).
//!
//! With [`NoiseModel::None`] the replay reproduces
//! [`mtsp_core::list_schedule`] *exactly* — a cross-validation of two
//! independent implementations of the same policy.

use crate::error::SimError;
use mtsp_core::{Ord64, Priority, Schedule, ScheduledTask};
use mtsp_dag::paths;
use mtsp_model::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Execution-time noise models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NoiseModel {
    /// Exact execution: realized = planned.
    #[default]
    None,
    /// Multiplicative uniform noise: `ξ ~ U[1−ε, 1+ε]`, `ε ∈ [0, 1)`.
    Uniform {
        /// Relative amplitude `ε`.
        epsilon: f64,
    },
    /// Multiplicative one-sided slowdown: `ξ ~ 1 + U[0, ε]` — models
    /// contention that only ever delays.
    Slowdown {
        /// Maximum relative slowdown `ε`.
        epsilon: f64,
    },
}

impl NoiseModel {
    /// A validated uniform noise model: `ε ∈ [0, 1)` keeps every factor
    /// `ξ = 1 + ε·u`, `u ∈ [−1, 1]`, strictly positive.
    pub fn uniform(epsilon: f64) -> Result<Self, SimError> {
        let model = NoiseModel::Uniform { epsilon };
        model.validate()?;
        Ok(model)
    }

    /// A validated one-sided slowdown model: any finite `ε ≥ 0` (factors
    /// are `ξ = 1 + ε·u ≥ 1`).
    pub fn slowdown(epsilon: f64) -> Result<Self, SimError> {
        let model = NoiseModel::Slowdown { epsilon };
        model.validate()?;
        Ok(model)
    }

    /// Checks the amplitude against the documented domain. The enum fields
    /// are public (struct-literal construction is allowed for e.g. config
    /// plumbing), so every consumer that *samples* validates first — an
    /// out-of-range `ε` would otherwise produce non-positive realized
    /// durations and silently corrupt a replay.
    pub fn validate(self) -> Result<(), SimError> {
        match self {
            NoiseModel::None => Ok(()),
            NoiseModel::Uniform { epsilon } => {
                if epsilon.is_finite() && (0.0..1.0).contains(&epsilon) {
                    Ok(())
                } else {
                    Err(SimError::InvalidNoise {
                        kind: "uniform",
                        epsilon,
                        domain: "[0, 1)",
                    })
                }
            }
            NoiseModel::Slowdown { epsilon } => {
                if epsilon.is_finite() && epsilon >= 0.0 {
                    Ok(())
                } else {
                    Err(SimError::InvalidNoise {
                        kind: "slowdown",
                        epsilon,
                        domain: "[0, inf)",
                    })
                }
            }
        }
    }

    /// Canonical text form: `none`, `uniform:EPS`, `slowdown:EPS` (floats
    /// printed with `{:?}`, so [`NoiseModel::parse_name`] round-trips).
    pub fn name(self) -> String {
        match self {
            NoiseModel::None => "none".into(),
            NoiseModel::Uniform { epsilon } => format!("uniform:{epsilon:?}"),
            NoiseModel::Slowdown { epsilon } => format!("slowdown:{epsilon:?}"),
        }
    }

    /// Parses the canonical text form; `None` for unknown kinds, malformed
    /// amplitudes, or amplitudes outside the documented domain.
    pub fn parse_name(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(NoiseModel::None);
        }
        let (kind, eps) = s.split_once(':')?;
        let epsilon: f64 = eps.parse().ok()?;
        match kind {
            "uniform" => NoiseModel::uniform(epsilon).ok(),
            "slowdown" => NoiseModel::slowdown(epsilon).ok(),
            _ => None,
        }
    }

    /// Draws one multiplicative factor. Callers must [`validate`] the
    /// model first; with a valid amplitude every draw is strictly
    /// positive.
    ///
    /// [`validate`]: NoiseModel::validate
    pub(crate) fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        match self {
            NoiseModel::None => 1.0,
            NoiseModel::Uniform { epsilon } => 1.0 + epsilon * (2.0 * rng.gen::<f64>() - 1.0),
            NoiseModel::Slowdown { epsilon } => 1.0 + epsilon * rng.gen::<f64>(),
        }
    }
}

/// Draws one noise factor per task (task-id order, so the draw sequence is
/// independent of scheduling order) after validating the model. Shared by
/// [`try_execute_online`] and the session replay in [`crate::replay`].
pub(crate) fn draw_noise_factors(
    noise: NoiseModel,
    n: usize,
    seed: u64,
) -> Result<Vec<f64>, SimError> {
    noise.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..n)
        .map(|_| {
            let xi = noise.sample(&mut rng);
            debug_assert!(xi > 0.0, "validated noise draws are positive");
            xi
        })
        .collect())
}

/// Replays the greedy list policy with fixed allotments `alloc` and
/// realized durations `p_j(l_j) · ξ_j`. Returns the realized schedule
/// (its `duration`s are the *realized* ones, so
/// [`mtsp_core::Schedule::verify`] will reject it for `ε > 0` — capacity
/// and precedence still hold by construction and are asserted in tests).
///
/// Rejects noise models whose amplitude is outside its documented domain
/// ([`NoiseModel::validate`]) — e.g. `Uniform { epsilon: 1.5 }` would
/// sample negative realized durations and corrupt the replay.
///
/// # Panics
/// Panics on allotment shape errors (same contract as
/// [`mtsp_core::list_schedule`]).
pub fn try_execute_online(
    ins: &Instance,
    alloc: &[usize],
    priority: Priority,
    noise: NoiseModel,
    seed: u64,
) -> Result<Schedule, SimError> {
    let n = ins.n();
    let m = ins.m();
    assert_eq!(alloc.len(), n, "one allotment per task required");
    assert!(
        alloc.iter().all(|&l| l >= 1 && l <= m),
        "allotments must lie in 1..=m"
    );
    let planned: Vec<f64> = ins.times_under(alloc);
    let xi = draw_noise_factors(noise, n, seed)?;
    let realized: Vec<f64> = planned.iter().zip(&xi).map(|(&p, &x)| p * x).collect();

    let prio: Vec<f64> = match priority {
        Priority::TaskId => (0..n).map(|j| -(j as f64)).collect(),
        // The policy only knows planned times; priorities use them.
        Priority::BottomLevel => paths::bottom_levels(ins.dag(), &planned),
        Priority::WidestFirst => alloc.iter().map(|&l| l as f64).collect(),
    };

    let dag = ins.dag();
    let mut remaining: Vec<usize> = (0..n).map(|j| dag.in_degree(j)).collect();
    let mut ready_time = vec![0.0f64; n];
    let mut available: BinaryHeap<Reverse<(Ord64, Ord64, usize)>> = BinaryHeap::new();
    for j in 0..n {
        if remaining[j] == 0 {
            available.push(Reverse((Ord64(0.0), Ord64(-prio[j]), j)));
        }
    }
    let mut running: BinaryHeap<Reverse<(Ord64, usize)>> = BinaryHeap::new();
    let mut placed = vec![
        ScheduledTask {
            start: 0.0,
            alloc: 1,
            duration: 0.0,
        };
        n
    ];
    let mut waiting: Vec<usize> = Vec::new();
    let mut free = m;
    let mut now = 0.0f64;
    let mut scheduled = 0usize;

    while scheduled < n {
        for j in waiting.drain(..) {
            available.push(Reverse((Ord64(ready_time[j]), Ord64(-prio[j]), j)));
        }
        let mut deferred = Vec::new();
        while let Some(&Reverse((rt, _, j))) = available.peek() {
            if rt.0 > now + 1e-12 * (1.0 + now.abs()) {
                break;
            }
            available.pop();
            if alloc[j] <= free {
                placed[j] = ScheduledTask {
                    start: now,
                    alloc: alloc[j],
                    duration: realized[j],
                };
                free -= alloc[j];
                running.push(Reverse((Ord64(now + realized[j]), j)));
                scheduled += 1;
            } else {
                deferred.push(j);
            }
        }
        waiting.extend(deferred);
        if scheduled == n {
            break;
        }
        if let Some(&Reverse((finish, _))) = running.peek() {
            let next_ready = available
                .peek()
                .map(|&Reverse((rt, _, _))| rt.0)
                .unwrap_or(f64::INFINITY);
            if waiting.is_empty() && next_ready < finish.0 {
                now = next_ready;
                continue;
            }
            now = finish.0;
            while let Some(&Reverse((f, j))) = running.peek() {
                if f.0 > now + 1e-12 * (1.0 + now.abs()) {
                    break;
                }
                running.pop();
                free += alloc[j];
                for &s in dag.succs(j) {
                    remaining[s] -= 1;
                    ready_time[s] = ready_time[s].max(f.0);
                    if remaining[s] == 0 {
                        available.push(Reverse((Ord64(ready_time[s]), Ord64(-prio[s]), s)));
                    }
                }
            }
        } else {
            match available.peek() {
                Some(&Reverse((rt, _, _))) => now = now.max(rt.0),
                None => unreachable!("tasks remain but none running or available"),
            }
        }
    }
    Ok(Schedule::new(m, placed))
}

/// [`try_execute_online`], panicking on an invalid noise model — the
/// historical signature, kept for callers that construct their noise from
/// literals they control.
///
/// # Panics
/// Panics on allotment shape errors or an out-of-domain noise amplitude.
pub fn execute_online(
    ins: &Instance,
    alloc: &[usize],
    priority: Priority,
    noise: NoiseModel,
    seed: u64,
) -> Schedule {
    try_execute_online(ins, alloc, priority, noise, seed).expect("valid noise model")
}

/// Verifies the structural feasibility of a realized schedule (capacity
/// and precedence; durations are whatever the noise produced).
pub fn realized_feasible(ins: &Instance, s: &Schedule) -> bool {
    for (i, j) in ins.dag().edges() {
        if s.task(i).finish() > s.task(j).start + 1e-9 {
            return false;
        }
    }
    s.slot_profile(1)
        .intervals
        .iter()
        .all(|&(_, _, b, _)| b <= ins.m())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsp_core::list_schedule;
    use mtsp_core::two_phase::schedule_jz;
    use mtsp_model::generate as igen;

    fn random(n: usize, m: usize, seed: u64) -> Instance {
        igen::random_instance(
            igen::DagFamily::Layered,
            igen::CurveFamily::Mixed,
            n,
            m,
            seed,
        )
    }

    #[test]
    fn zero_noise_reproduces_list_schedule_exactly() {
        for seed in 0..6 {
            let ins = random(25, 8, seed);
            let alloc: Vec<usize> = (0..ins.n()).map(|j| 1 + j % 3).collect();
            for prio in [
                Priority::TaskId,
                Priority::BottomLevel,
                Priority::WidestFirst,
            ] {
                let a = list_schedule(&ins, &alloc, prio);
                let b = execute_online(&ins, &alloc, prio, NoiseModel::None, seed);
                assert_eq!(a, b, "seed {seed}, prio {prio:?}");
            }
        }
    }

    #[test]
    fn noisy_execution_stays_feasible() {
        for seed in 0..5 {
            let ins = random(20, 6, seed);
            let rep = schedule_jz(&ins).unwrap();
            for eps in [0.05, 0.1, 0.3] {
                let s = execute_online(
                    &ins,
                    &rep.alloc,
                    Priority::TaskId,
                    NoiseModel::Uniform { epsilon: eps },
                    seed,
                );
                assert!(realized_feasible(&ins, &s), "seed {seed} eps {eps}");
            }
        }
    }

    #[test]
    fn slowdown_noise_never_speeds_up_tasks() {
        let ins = random(15, 4, 3);
        let alloc = vec![1usize; ins.n()];
        let planned = list_schedule(&ins, &alloc, Priority::TaskId);
        let s = execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Slowdown { epsilon: 0.2 },
            7,
        );
        for j in 0..ins.n() {
            assert!(s.task(j).duration >= planned.task(j).duration - 1e-12);
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let ins = random(12, 4, 1);
        let alloc = vec![2usize; ins.n()];
        let a = execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Uniform { epsilon: 0.1 },
            42,
        );
        let b = execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Uniform { epsilon: 0.1 },
            42,
        );
        assert_eq!(a, b);
        let c = execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Uniform { epsilon: 0.1 },
            43,
        );
        assert_ne!(a, c);
    }

    /// The bugfix: `ε ∈ [0, 1)` is documented but was never validated —
    /// `Uniform { epsilon: 1.5 }` samples negative realized durations.
    /// Out-of-domain amplitudes now fail loudly with a `SimError`.
    #[test]
    fn out_of_domain_noise_is_rejected() {
        for eps in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let e = NoiseModel::uniform(eps).unwrap_err();
            assert!(
                matches!(
                    e,
                    SimError::InvalidNoise {
                        kind: "uniform",
                        ..
                    }
                ),
                "eps {eps}: {e:?}"
            );
            assert!(e.to_string().contains("uniform"), "{e}");
        }
        for eps in [-0.5, f64::NAN, f64::NEG_INFINITY] {
            assert!(NoiseModel::slowdown(eps).is_err(), "eps {eps}");
        }
        // Boundary values inside the domain are accepted.
        assert!(NoiseModel::uniform(0.0).is_ok());
        assert!(NoiseModel::uniform(0.999_999).is_ok());
        assert!(NoiseModel::slowdown(0.0).is_ok());
        assert!(NoiseModel::slowdown(10.0).is_ok());
        assert!(NoiseModel::None.validate().is_ok());

        // The replay entry point surfaces the error instead of silently
        // corrupting durations.
        let ins = random(8, 3, 0);
        let alloc = vec![1usize; ins.n()];
        let r = try_execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Uniform { epsilon: 1.5 },
            0,
        );
        assert!(matches!(r, Err(SimError::InvalidNoise { .. })));
        // Valid models still realize strictly positive durations at the
        // domain boundary.
        let s = try_execute_online(
            &ins,
            &alloc,
            Priority::TaskId,
            NoiseModel::Uniform {
                epsilon: 1.0 - 1e-9,
            },
            0,
        )
        .unwrap();
        for j in 0..ins.n() {
            assert!(s.task(j).duration > 0.0);
        }
    }

    #[test]
    fn noise_names_round_trip() {
        for model in [
            NoiseModel::None,
            NoiseModel::Uniform { epsilon: 0.1 },
            NoiseModel::Slowdown { epsilon: 0.25 },
        ] {
            assert_eq!(NoiseModel::parse_name(&model.name()), Some(model));
        }
        assert_eq!(NoiseModel::parse_name("uniform:1.5"), None);
        assert_eq!(NoiseModel::parse_name("uniform:x"), None);
        assert_eq!(NoiseModel::parse_name("gauss:0.1"), None);
        assert_eq!(NoiseModel::parse_name("uniform"), None);
        assert_eq!(NoiseModel::default(), NoiseModel::None);
    }

    #[test]
    fn makespan_degrades_gracefully_with_noise() {
        // Average makespan under ±10% noise stays within ~25% of planned
        // (list scheduling absorbs perturbations; this is a sanity band,
        // not a theorem).
        let ins = random(30, 8, 9);
        let rep = schedule_jz(&ins).unwrap();
        let planned = rep.schedule.makespan();
        let mut worst = 0.0f64;
        for seed in 0..10 {
            let s = execute_online(
                &ins,
                &rep.alloc,
                Priority::TaskId,
                NoiseModel::Uniform { epsilon: 0.1 },
                seed,
            );
            worst = worst.max(s.makespan());
        }
        assert!(
            worst <= planned * 1.35,
            "worst noisy makespan {worst} vs planned {planned}"
        );
    }
}
