//! Schedule quality metrics beyond the makespan, computed from a schedule
//! and its simulated execution — the measurement layer of the empirical
//! experiments.

use crate::executor::SimReport;
use mtsp_core::Schedule;
use mtsp_dag::paths;
use mtsp_model::Instance;

/// Aggregate execution metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Utilization per physical processor (`busy / makespan`).
    pub per_proc_utilization: Vec<f64>,
    /// Mean over tasks of `start − ready` (time spent waiting for
    /// processors after all predecessors finished).
    pub mean_wait: f64,
    /// Maximum task wait.
    pub max_wait: f64,
    /// `Σ_j p_j(1) / makespan` — speedup achieved over serial execution.
    pub achieved_speedup: f64,
    /// `L(α) / makespan` where `L(α)` is the critical-path length under
    /// the schedule's allotment: 1.0 means the schedule is path-dominated,
    /// small values mean it is capacity-dominated.
    pub critical_path_fraction: f64,
}

/// Computes [`Metrics`] for an executed schedule.
pub fn metrics(ins: &Instance, schedule: &Schedule, report: &SimReport) -> Metrics {
    let makespan = schedule.makespan();
    let per_proc_utilization = report
        .busy
        .iter()
        .map(|&b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();

    // Ready time = max predecessor finish.
    let mut waits = Vec::with_capacity(schedule.n());
    for j in 0..schedule.n() {
        let ready = ins
            .dag()
            .preds(j)
            .iter()
            .map(|&i| schedule.task(i).finish())
            .fold(0.0f64, f64::max);
        waits.push((schedule.task(j).start - ready).max(0.0));
    }
    let mean_wait = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let max_wait = waits.iter().copied().fold(0.0, f64::max);

    let serial: f64 = ins.profiles().iter().map(|p| p.time(1)).sum();
    let achieved_speedup = if makespan > 0.0 {
        serial / makespan
    } else {
        1.0
    };

    let durations: Vec<f64> = (0..schedule.n())
        .map(|j| schedule.task(j).duration)
        .collect();
    let lpath = paths::critical_path_length(ins.dag(), &durations);
    let critical_path_fraction = if makespan > 0.0 {
        lpath / makespan
    } else {
        1.0
    };

    Metrics {
        per_proc_utilization,
        mean_wait,
        max_wait,
        achieved_speedup,
        critical_path_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use mtsp_core::two_phase::schedule_jz;
    use mtsp_core::{list_schedule, Priority};
    use mtsp_model::{generate as igen, Profile};

    #[test]
    fn chain_is_path_dominated() {
        let dag = mtsp_dag::generate::chain(4);
        let profiles = vec![Profile::constant(2.0, 4).unwrap(); 4];
        let ins = Instance::new(dag, profiles).unwrap();
        let s = list_schedule(&ins, &[1; 4], Priority::TaskId);
        let r = execute(&ins, &s).unwrap();
        let m = metrics(&ins, &s, &r);
        assert!((m.critical_path_fraction - 1.0).abs() < 1e-9);
        assert!((m.mean_wait).abs() < 1e-9, "chain tasks never wait");
        assert!((m.achieved_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_wait_for_capacity() {
        // 3 unit tasks, 1 proc each, m = 1: waits are 0, 1, 2.
        let profiles = vec![Profile::constant(1.0, 1).unwrap(); 3];
        let ins = Instance::new(mtsp_dag::generate::independent(3), profiles).unwrap();
        let s = list_schedule(&ins, &[1; 3], Priority::TaskId);
        let r = execute(&ins, &s).unwrap();
        let m = metrics(&ins, &s, &r);
        assert!((m.mean_wait - 1.0).abs() < 1e-9);
        assert!((m.max_wait - 2.0).abs() < 1e-9);
        assert!((m.per_proc_utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_on_parallel_workload() {
        let ins = igen::random_instance(
            igen::DagFamily::Independent,
            igen::CurveFamily::PowerLaw,
            16,
            8,
            4,
        );
        let rep = schedule_jz(&ins).unwrap();
        let r = execute(&ins, &rep.schedule).unwrap();
        let m = metrics(&ins, &rep.schedule, &r);
        assert!(
            m.achieved_speedup > 1.5,
            "independent tasks on 8 procs must beat serial: {}",
            m.achieved_speedup
        );
        assert!(m.per_proc_utilization.len() == 8);
        assert!(m
            .per_proc_utilization
            .iter()
            .all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
    }
}
