#![warn(missing_docs)]
//! # mtsp-sim — discrete-event parallel-machine simulator
//!
//! The paper's model folds all communication and synchronization overhead
//! of a real parallel machine (the motivating example is the MIT Alewife)
//! into the processing times `p_j(l)`; the paper itself reports no machine
//! experiments. This crate is the closest synthetic equivalent
//! (substitution S7 in DESIGN.md): it *executes* schedules on a machine
//! with `m` explicitly tracked processors.
//!
//! * [`executor`] — executes a static [`mtsp_core::Schedule`], assigning
//!   concrete processor ids at every start event and failing loudly on any
//!   capacity violation: an independent, mechanism-level feasibility check
//!   (the `mtsp-core` verifier sweeps aggregate counts; this one books
//!   individual processors).
//! * [`online`] — replays the LIST *policy* online with multiplicative
//!   execution-time noise: allotments stay fixed, realized durations
//!   deviate by `±ε`, ready tasks start greedily as processors free up.
//!   With `ε = 0` it reproduces `mtsp_core::list_schedule` exactly (tested),
//!   which cross-validates both implementations; with `ε > 0` it measures
//!   the robustness of the phase-1 allotment (experiment E4).
//! * [`arrivals`] — deterministic arrival-stream generators: any generated
//!   instance becomes an open [`Scenario`](mtsp_model::textio::Scenario)
//!   with topologically-consistent release times under periodic / Poisson
//!   / bursty inter-arrival processes.
//! * [`replay`] — the event-driven session replay: arrivals, new edges and
//!   machine-count changes drive a long-lived
//!   [`ScheduleSession`](mtsp_engine::ScheduleSession) that re-plans the
//!   not-yet-started suffix at every epoch while committed tasks stay
//!   frozen; realized makespans and per-epoch re-plan latency come back in
//!   a [`ReplayOutcome`].
//! * [`trace`] — time-ordered event logs and per-processor utilization.

pub mod arrivals;
pub mod contiguous;
pub mod error;
pub mod executor;
pub mod gantt;
pub mod metrics;
pub mod online;
pub mod replay;
pub mod trace;

pub use arrivals::{arrival_scenario, ArrivalPattern};
pub use contiguous::{list_schedule_contiguous, ContiguousSchedule};
pub use error::SimError;
pub use executor::{execute, execute_contiguous, SimReport};
pub use gantt::gantt;
pub use metrics::{metrics, Metrics};
pub use online::{execute_online, try_execute_online, NoiseModel};
pub use replay::{replay, replay_feasible, EpochTrace, ReplayConfig, ReplayOutcome};
pub use trace::{Event, EventKind, Trace};
