//! Deterministic arrival-stream generators for online scheduling
//! scenarios.
//!
//! The batch pipeline sees a closed instance; a serving loop sees tasks
//! *arrive*. This module turns any generated [`Instance`] into a
//! [`Scenario`] by assigning arrival times along a topological order of
//! its DAG — so a task never arrives before the tasks it depends on, the
//! invariant [`Scenario::new`] enforces — under one of a small family of
//! inter-arrival processes. Everything is a pure function of the inputs
//! and the seed, so scenario grids replay byte-identically anywhere.
//!
//! [`Instance`]: mtsp_model::Instance

use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_model::textio::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inter-arrival process of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalPattern {
    /// Every task arrives at time 0 — the closed-batch degenerate case
    /// (replaying it with zero noise reproduces the batch pipeline).
    Batch,
    /// Constant gap between consecutive arrivals.
    Periodic,
    /// Exponential gaps (a Poisson process with the given mean gap).
    Poisson,
    /// Groups of four tasks arrive together, bursts separated by four
    /// mean gaps — models batched job submission.
    Bursty,
}

impl ArrivalPattern {
    /// Every pattern, in canonical order.
    pub const ALL: [ArrivalPattern; 4] = [
        ArrivalPattern::Batch,
        ArrivalPattern::Periodic,
        ArrivalPattern::Poisson,
        ArrivalPattern::Bursty,
    ];

    /// Canonical lowercase name (the token of the `mtsp-replay v1` spec).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalPattern::Batch => "batch",
            ArrivalPattern::Periodic => "periodic",
            ArrivalPattern::Poisson => "poisson",
            ArrivalPattern::Bursty => "bursty",
        }
    }

    /// Parses a canonical name.
    pub fn parse_name(s: &str) -> Option<ArrivalPattern> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The gap *before* the `k`-th arrival (`k = 0` is the first task,
    /// which always arrives at time 0).
    fn gap<R: Rng + ?Sized>(self, k: usize, mean: f64, rng: &mut R) -> f64 {
        if k == 0 {
            return 0.0;
        }
        match self {
            ArrivalPattern::Batch => 0.0,
            ArrivalPattern::Periodic => mean,
            ArrivalPattern::Poisson => {
                // Inverse-CDF exponential; u < 1 keeps ln finite.
                let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
                -mean * (1.0 - u).ln()
            }
            ArrivalPattern::Bursty => {
                if k.is_multiple_of(4) {
                    4.0 * mean
                } else {
                    0.0
                }
            }
        }
    }
}

/// Generates an arrival scenario: the instance of
/// [`random_instance`]`(dag, curve, n, m, seed)` with arrival times
/// assigned along a topological order of its DAG under `pattern` with
/// mean inter-arrival gap `mean_gap`. Deterministic in all arguments.
///
/// # Panics
/// Panics if `mean_gap` is not finite and `≥ 0`.
pub fn arrival_scenario(
    dag: DagFamily,
    curve: CurveFamily,
    n: usize,
    m: usize,
    pattern: ArrivalPattern,
    mean_gap: f64,
    seed: u64,
) -> Scenario {
    assert!(
        mean_gap.is_finite() && mean_gap >= 0.0,
        "mean_gap must be finite and >= 0"
    );
    let ins = random_instance(dag, curve, n, m, seed);
    // A distinct RNG stream from the instance generator's, so arrival
    // noise never perturbs the instance content.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_57AE_0000_0001);
    let order = ins.dag().topological_order();
    let mut arrival = vec![0.0f64; ins.n()];
    let mut t = 0.0f64;
    for (k, &j) in order.iter().enumerate() {
        t += pattern.gap(k, mean_gap, &mut rng);
        arrival[j] = t;
    }
    Scenario::new(ins, arrival, Vec::new())
        .expect("topological arrival times satisfy the scenario invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in ArrivalPattern::ALL {
            assert_eq!(ArrivalPattern::parse_name(p.name()), Some(p));
        }
        assert_eq!(ArrivalPattern::parse_name("nope"), None);
    }

    #[test]
    fn scenarios_are_deterministic_and_topo_consistent() {
        for pattern in ArrivalPattern::ALL {
            let a = arrival_scenario(
                DagFamily::Layered,
                CurveFamily::Mixed,
                16,
                4,
                pattern,
                0.8,
                7,
            );
            let b = arrival_scenario(
                DagFamily::Layered,
                CurveFamily::Mixed,
                16,
                4,
                pattern,
                0.8,
                7,
            );
            assert_eq!(a, b, "{pattern:?}");
            for (u, v) in a.ins.dag().edges() {
                assert!(a.arrival[u] <= a.arrival[v], "{pattern:?} edge ({u},{v})");
            }
        }
    }

    #[test]
    fn batch_pattern_arrives_at_zero_and_periodic_spreads() {
        let b = arrival_scenario(
            DagFamily::Chain,
            CurveFamily::PowerLaw,
            6,
            2,
            ArrivalPattern::Batch,
            1.0,
            0,
        );
        assert!(b.arrival.iter().all(|&t| t == 0.0));
        let p = arrival_scenario(
            DagFamily::Chain,
            CurveFamily::PowerLaw,
            6,
            2,
            ArrivalPattern::Periodic,
            1.0,
            0,
        );
        assert!((p.last_arrival() - (p.ins.n() as f64 - 1.0)).abs() < 1e-12);
    }

    /// `in_tree`-style families have edges with `pred > succ`; the
    /// topological assignment must still satisfy the invariant.
    #[test]
    fn reversed_id_order_edges_are_handled() {
        for seed in 0..4 {
            let sc = arrival_scenario(
                DagFamily::RandomTree,
                CurveFamily::Amdahl,
                12,
                4,
                ArrivalPattern::Poisson,
                0.5,
                seed,
            );
            for (u, v) in sc.ins.dag().edges() {
                assert!(sc.arrival[u] <= sc.arrival[v]);
            }
        }
    }
}
