//! Property tests for the ordering invariants of [`mtsp_sim::Trace`].
//!
//! The executor promises two things beyond raw feasibility, and these
//! properties pin both over randomly generated instances and allotments:
//!
//! * **Finishes before starts at equal times** — when a task starts the
//!   instant another finishes, the finish event is logged first, so a
//!   reader scanning the trace never sees a processor occupied by two
//!   tasks at once.
//! * **Occupy/release balance** — every processor a `Start` occupies is
//!   released by exactly one matching `Finish`, occupancy never exceeds
//!   `m`, and the machine is empty when the trace ends.

use std::collections::HashMap;

use mtsp_core::{list_schedule, Priority};
use mtsp_model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp_sim::{execute, execute_contiguous, EventKind, Trace};
use proptest::prelude::*;

fn dag_family(pick: usize) -> DagFamily {
    match pick % 4 {
        0 => DagFamily::Independent,
        1 => DagFamily::Chain,
        2 => DagFamily::Layered,
        _ => DagFamily::SeriesParallel,
    }
}

fn priority(pick: usize) -> Priority {
    match pick % 3 {
        0 => Priority::TaskId,
        1 => Priority::BottomLevel,
        _ => Priority::WidestFirst,
    }
}

/// Finish events must sort strictly before start events at equal
/// timestamps (exact float equality: the executor emits both from the
/// same completion value, no arithmetic in between).
fn assert_finishes_before_starts(tr: &Trace) {
    for w in tr.events.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        assert!(
            a.time <= b.time,
            "events out of order: {} after {}",
            a.time,
            b.time
        );
        if a.time == b.time {
            let a_is_start = matches!(a.kind, EventKind::Start { .. });
            let b_is_finish = matches!(b.kind, EventKind::Finish { .. });
            assert!(
                !(a_is_start && b_is_finish),
                "finish at t={} logged after a start at the same time",
                b.time
            );
        }
    }
}

/// Replays the trace, checking occupy/release balance event by event:
/// no double-booking, no phantom releases, occupancy bounded by `m`,
/// everything released at the end. Returns (starts, finishes).
fn assert_occupy_release_balance(tr: &Trace, m: usize) -> (usize, usize) {
    let mut owner: Vec<Option<usize>> = vec![None; m];
    let mut open: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut busy = 0usize;
    let (mut starts, mut finishes) = (0usize, 0usize);
    for e in &tr.events {
        match &e.kind {
            EventKind::Start { task, procs } => {
                starts += 1;
                assert!(!procs.is_empty(), "task {task} started on no processors");
                for &p in procs {
                    assert!(p < m, "task {task} started on out-of-range proc {p}");
                    assert!(
                        owner[p].is_none(),
                        "proc {p} double-booked by task {task} at t={}",
                        e.time
                    );
                    owner[p] = Some(*task);
                }
                busy += procs.len();
                assert!(busy <= m, "occupancy {busy} exceeds m={m} at t={}", e.time);
                assert!(
                    open.insert(*task, procs.clone()).is_none(),
                    "task {task} started twice"
                );
            }
            EventKind::Finish { task } => {
                finishes += 1;
                let procs = open
                    .remove(task)
                    .unwrap_or_else(|| panic!("task {task} finished without starting"));
                for p in procs {
                    assert_eq!(
                        owner[p],
                        Some(*task),
                        "task {task} released proc {p} it did not hold"
                    );
                    owner[p] = None;
                    busy -= 1;
                }
            }
        }
    }
    assert!(open.is_empty(), "tasks never finished: {:?}", open.keys());
    assert_eq!(busy, 0, "processors still occupied at end of trace");
    (starts, finishes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Free (non-contiguous) executor traces keep both invariants for
    /// random instances scheduled by LIST under random allotments.
    #[test]
    fn executor_trace_invariants(
        n in 2usize..=16,
        m in 2usize..=6,
        seed in 0u64..10_000,
        dag_pick in 0usize..4,
        prio_pick in 0usize..3,
        alloc_raw in proptest::collection::vec(1usize..=6, 16),
    ) {
        let ins = random_instance(
            dag_family(dag_pick),
            CurveFamily::Mixed,
            n,
            m,
            seed,
        );
        // Some DAG families round the task count to their natural shape,
        // so size the allotment off the instance, not the requested `n`.
        let n = ins.n();
        let alloc: Vec<usize> = (0..n).map(|j| alloc_raw[j % alloc_raw.len()].min(m)).collect();
        let schedule = list_schedule(&ins, &alloc, priority(prio_pick));
        let report = execute(&ins, &schedule).expect("LIST schedules must simulate");
        let tr = &report.trace;

        prop_assert!(tr.is_consistent(m));
        assert_finishes_before_starts(tr);
        let (starts, finishes) = assert_occupy_release_balance(tr, m);
        prop_assert_eq!(starts, finishes);
        // Every positive-duration task appears exactly once; zero-duration
        // tasks are elided from the trace by contract.
        let expected = (0..n)
            .filter(|&j| ins.profile(j).time(alloc[j]) > 0.0)
            .count();
        prop_assert_eq!(starts, expected);
    }

    /// The contiguous executor (interval processor blocks) upholds the
    /// same trace contract.
    #[test]
    fn contiguous_executor_trace_invariants(
        n in 2usize..=12,
        m in 2usize..=5,
        seed in 0u64..10_000,
        prio_pick in 0usize..3,
        alloc_raw in proptest::collection::vec(1usize..=5, 12),
    ) {
        let ins = random_instance(
            DagFamily::Layered,
            CurveFamily::PowerLaw,
            n,
            m,
            seed,
        );
        let n = ins.n();
        let alloc: Vec<usize> = (0..n).map(|j| alloc_raw[j % alloc_raw.len()].min(m)).collect();
        let schedule = list_schedule(&ins, &alloc, priority(prio_pick));
        // Counts-feasible schedules may not survive the contiguity
        // requirement (fragmentation is a documented outcome); the trace
        // contract only applies to successful executions.
        match execute_contiguous(&ins, &schedule) {
            Ok(report) => {
                let tr = &report.trace;
                prop_assert!(tr.is_consistent(m));
                assert_finishes_before_starts(tr);
                let (starts, finishes) = assert_occupy_release_balance(tr, m);
                prop_assert_eq!(starts, finishes);
            }
            Err(mtsp_sim::SimError::FragmentationViolation { .. }) => {}
            Err(other) => panic!("unexpected simulation error: {other}"),
        }
    }
}
