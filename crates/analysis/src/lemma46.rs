//! Lemma 4.6: if two C¹ functions on `[a, b]` satisfy
//!
//! * **Ω₁** — `f′(x)·g′(x) < 0` for all `x` (opposite strict monotonicity),
//!   or
//! * **Ω₂** — one of them is constant and the other strictly monotone,
//!
//! and `f(x) = g(x)` has a solution in `[a, b]`, then the crossing `x₀` is
//! unique and minimizes `h(x) = max{f(x), g(x)}`.
//!
//! Section 4.1 applies this with `f = A(·)` and `g = B(·)` (the two vertex
//! branches of the min–max program): for fixed `ρ`, `A` is increasing and
//! `B` decreasing in `μ`, so the balanced `μ*` of Lemma 4.8 is exactly
//! their crossing — the series behind Figs. 3 and 4.

/// Numerically checks Ω₁ on a sample grid (central differences).
pub fn omega1_holds<F, G>(f: F, g: G, a: f64, b: f64, samples: usize) -> bool
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let h = (b - a) / (samples as f64 * 10.0);
    (0..=samples).all(|i| {
        let x = a + (b - a) * i as f64 / samples as f64;
        let df = (f(x + h) - f(x - h)) / (2.0 * h);
        let dg = (g(x + h) - g(x - h)) / (2.0 * h);
        df * dg < 0.0
    })
}

/// Numerically checks Ω₂ (one function constant, the other strictly
/// monotone) on a sample grid.
pub fn omega2_holds<F, G>(f: F, g: G, a: f64, b: f64, samples: usize) -> bool
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let h = (b - a) / (samples as f64 * 10.0);
    let tol = 1e-9;
    let mut f_const = true;
    let mut g_const = true;
    let mut f_sign = 0i8;
    let mut g_sign = 0i8;
    let mut f_monotone = true;
    let mut g_monotone = true;
    for i in 0..=samples {
        let x = a + (b - a) * i as f64 / samples as f64;
        let df = (f(x + h) - f(x - h)) / (2.0 * h);
        let dg = (g(x + h) - g(x - h)) / (2.0 * h);
        if df.abs() > tol {
            f_const = false;
            let s = if df > 0.0 { 1 } else { -1 };
            if f_sign == 0 {
                f_sign = s;
            } else if f_sign != s {
                f_monotone = false;
            }
        }
        if dg.abs() > tol {
            g_const = false;
            let s = if dg > 0.0 { 1 } else { -1 };
            if g_sign == 0 {
                g_sign = s;
            } else if g_sign != s {
                g_monotone = false;
            }
        }
    }
    (f_const && !g_const && g_monotone && g_sign != 0)
        || (g_const && !f_const && f_monotone && f_sign != 0)
}

/// Finds the crossing of `f` and `g` in `[a, b]` by bisection on `f − g`.
/// Returns `None` when `f − g` has the same sign at both ends.
pub fn crossing<F, G>(f: F, g: G, a: f64, b: f64, tol: f64) -> Option<f64>
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let d = |x: f64| f(x) - g(x);
    let (mut lo, mut hi) = (a, b);
    let mut dlo = d(lo);
    if dlo == 0.0 {
        return Some(lo);
    }
    let dhi = d(hi);
    if dhi == 0.0 {
        return Some(hi);
    }
    if dlo * dhi > 0.0 {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol {
            return Some(mid);
        }
        let dm = d(mid);
        if dm == 0.0 {
            return Some(mid);
        }
        if dlo * dm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            dlo = dm;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Minimizes `h(x) = max{f, g}` on `[a, b]` by dense sampling plus local
/// refinement. Used to *verify* Lemma 4.6 numerically rather than assume
/// it.
pub fn minimize_max<F, G>(f: F, g: G, a: f64, b: f64, samples: usize) -> (f64, f64)
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let h = |x: f64| f(x).max(g(x));
    let mut best = (a, h(a));
    for i in 1..=samples {
        let x = a + (b - a) * i as f64 / samples as f64;
        let v = h(x);
        if v < best.1 {
            best = (x, v);
        }
    }
    // Golden-section refinement around the best sample.
    let step = (b - a) / samples as f64;
    let (mut lo, mut hi) = ((best.0 - step).max(a), (best.0 + step).min(b));
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..100 {
        let x1 = hi - phi * (hi - lo);
        let x2 = lo + phi * (hi - lo);
        if h(x1) < h(x2) {
            hi = x2;
        } else {
            lo = x1;
        }
    }
    let x = 0.5 * (lo + hi);
    (x, h(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmax::{branch_a, branch_b};
    use crate::ratio::mu_star;

    #[test]
    fn omega1_detects_opposite_slopes() {
        assert!(omega1_holds(|x| x, |x| -x, 0.0, 1.0, 50));
        assert!(!omega1_holds(|x| x, |x| 2.0 * x, 0.0, 1.0, 50));
        assert!(!omega1_holds(|x| x * x - x, |x| -x, 0.0, 1.0, 50)); // f not monotone
    }

    #[test]
    fn omega2_detects_flat_vs_monotone() {
        assert!(omega2_holds(|_| 1.0, |x| x, 0.0, 1.0, 50));
        assert!(omega2_holds(|x| -x, |_| 0.3, 0.0, 1.0, 50));
        assert!(!omega2_holds(|_| 1.0, |_| 2.0, 0.0, 1.0, 50));
        assert!(!omega2_holds(|x| x, |x| -x, 0.0, 1.0, 50));
    }

    #[test]
    fn crossing_bisection() {
        let x0 = crossing(|x| x, |x| 1.0 - x, 0.0, 1.0, 1e-12).unwrap();
        assert!((x0 - 0.5).abs() < 1e-9);
        assert!(crossing(|x| x + 2.0, |x| x, 0.0, 1.0, 1e-12).is_none());
    }

    #[test]
    fn lemma_4_6_on_linear_pair() {
        // f decreasing, g increasing (Omega1): crossing minimizes the max.
        let f = |x: f64| 3.0 - 2.0 * x;
        let g = |x: f64| 1.0 + x;
        assert!(omega1_holds(f, g, 0.0, 1.0, 64));
        let x0 = crossing(f, g, 0.0, 1.0, 1e-12).unwrap();
        let (xmin, _) = minimize_max(f, g, 0.0, 1.0, 1000);
        assert!((x0 - xmin).abs() < 1e-3, "crossing {x0} vs argmin {xmin}");
    }

    #[test]
    fn branches_a_b_satisfy_omega1_in_mu_and_cross_at_mu_star() {
        // Continuous-mu versions of the two branches at fixed rho.
        let m = 40usize;
        let rho = 0.26;
        let mf = m as f64;
        let a_of = move |mu: f64| {
            (2.0 * mf / (2.0 - rho) + (mf - mu) * 2.0 / (1.0 + rho)) / (mf - mu + 1.0)
        };
        let b_of = move |mu: f64| {
            let q: f64 = (mu / mf).min((1.0 + rho) / 2.0);
            (2.0 * mf / (2.0 - rho) + (mf - 2.0 * mu + 1.0) / q) / (mf - mu + 1.0)
        };
        // On a mu interval inside (1, (m+1)/2), A increases and B decreases.
        assert!(omega1_holds(a_of, b_of, 2.0, 20.0, 64));
        let x0 = crossing(a_of, b_of, 2.0, 20.0, 1e-10).unwrap();
        let expect = mu_star(m, rho);
        assert!(
            (x0 - expect).abs() < 1e-6,
            "crossing {x0} vs Lemma 4.8 mu* {expect}"
        );
        // Lemma 4.6 conclusion: the crossing minimizes max{A, B}.
        let (xmin, _) = minimize_max(a_of, b_of, 2.0, 20.0, 4000);
        assert!((x0 - xmin).abs() < 1e-2);
        // Consistency with the integer-mu objective: the best integer mu is
        // a neighbor of the crossing.
        let best_int = (2..=20)
            .min_by(|&p, &q| {
                branch_a(m, p, rho)
                    .max(branch_b(m, p, rho))
                    .partial_cmp(&branch_a(m, q, rho).max(branch_b(m, q, rho)))
                    .unwrap()
            })
            .unwrap();
        assert!((best_int as f64 - x0).abs() <= 1.0 + 1e-9);
    }
}
