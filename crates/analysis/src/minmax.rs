//! The min–max nonlinear program of Lemma 4.5 (Eq. 17/18).
//!
//! For fixed machine size `m`, allotment cap `μ` and rounding parameter
//! `ρ`, the approximation ratio of the two-phase algorithm is bounded by
//! the *inner maximum*
//!
//! ```text
//!   max_{x1,x2 ≥ 0}  [2m/(2−ρ) + (m−μ)x₁ + (m−2μ+1)x₂] / (m−μ+1)
//!   s.t. (1+ρ)x₁/2 + min{μ/m, (1+ρ)/2}·x₂ ≤ 1
//! ```
//!
//! where `x₁ = |T₁|/C*max` and `x₂ = |T₂|/C*max` are the normalized lengths
//! of the low-utilization and medium-utilization time-slot classes
//! (Lemmas 4.3/4.4). The feasible region is a triangle, so the maximum sits
//! at one of its three vertices; [`objective`] evaluates all of them.

/// Value of the objective at the vertex `x₁ = x₂ = 0`.
fn vertex0(m: f64, mu: f64, rho: f64) -> f64 {
    (2.0 * m / (2.0 - rho)) / (m - mu + 1.0)
}

/// Branch `A(μ, ρ)`: the vertex `x₁ = 2/(1+ρ)`, `x₂ = 0` — all slack time
/// is of the first type. This is the `A` function of Section 4.3.
pub fn branch_a(m: usize, mu: usize, rho: f64) -> f64 {
    let (m, mu) = (m as f64, mu as f64);
    (2.0 * m / (2.0 - rho) + (m - mu) * 2.0 / (1.0 + rho)) / (m - mu + 1.0)
}

/// Branch `B(μ, ρ)`: the vertex `x₁ = 0`, `x₂ = 1/min{μ/m, (1+ρ)/2}` — all
/// slack time is of the second type. This is the `B` function of
/// Section 4.3 (with `q = μ/m` in the `ρ > 2μ/m − 1` regime).
pub fn branch_b(m: usize, mu: usize, rho: f64) -> f64 {
    let (mf, muf) = (m as f64, mu as f64);
    let q = (muf / mf).min((1.0 + rho) / 2.0);
    (2.0 * mf / (2.0 - rho) + (mf - 2.0 * muf + 1.0) / q) / (mf - muf + 1.0)
}

/// The inner maximum of program (17): the ratio bound of the algorithm run
/// with parameters `(μ, ρ)` on `m` processors.
///
/// # Panics
/// Panics if `μ ∉ 1..=m` or `ρ ∉ [0, 1]`.
pub fn objective(m: usize, mu: usize, rho: f64) -> f64 {
    assert!(m >= 1, "m must be at least 1");
    assert!(mu >= 1 && mu <= m, "mu must lie in 1..=m");
    assert!((0.0..=1.0).contains(&rho), "rho must lie in [0, 1]");
    vertex0(m as f64, mu as f64, rho)
        .max(branch_a(m, mu, rho))
        .max(branch_b(m, mu, rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_spot_values() {
        // Rows of Table 2 are objective(m, mu, rho) values.
        assert!((objective(2, 1, 0.0) - 2.0).abs() < 1e-9);
        assert!((objective(4, 2, 0.0) - 8.0 / 3.0).abs() < 1e-9);
        assert!((objective(6, 3, 0.26) - 2.9146).abs() < 5e-5);
        assert!((objective(10, 4, 0.26) - 3.0026).abs() < 5e-5);
        assert!((objective(24, 8, 0.26) - 3.2110).abs() < 5e-5);
        assert!((objective(33, 11, 0.26) - 3.2144).abs() < 5e-5);
    }

    #[test]
    fn m3_closed_form() {
        // 2(2+sqrt 3)/3 at (mu, rho) = (2, 0.098) -- Lemma 4.7 / Table 2.
        let expect = 2.0 * (2.0 + 3f64.sqrt()) / 3.0;
        assert!((objective(3, 2, 0.098) - expect).abs() < 2e-4);
    }

    #[test]
    fn branches_meet_at_balanced_mu() {
        // Lemma 4.8's mu*(rho) equates A and B (continuous mu); at integral
        // mu near mu* the two branches are close.
        let m = 1000;
        let rho = 0.26;
        let mu_star = ((2.0 + rho) * m as f64
            - ((rho * rho + 2.0 * rho + 2.0) * (m * m) as f64 - 2.0 * (1.0 + rho) * m as f64)
                .sqrt())
            / 2.0;
        let mu = mu_star.round() as usize;
        let a = branch_a(m, mu, rho);
        let b = branch_b(m, mu, rho);
        assert!((a - b).abs() < 0.01, "A = {a}, B = {b}");
    }

    #[test]
    fn objective_dominates_branches() {
        for m in [2usize, 5, 9, 16, 33] {
            for mu in 1..=m.div_ceil(2) {
                for rho10 in 0..=10 {
                    let rho = rho10 as f64 / 10.0;
                    let obj = objective(m, mu, rho);
                    assert!(obj >= branch_a(m, mu, rho) - 1e-12);
                    assert!(obj >= branch_b(m, mu, rho) - 1e-12);
                    assert!(obj >= 1.0, "ratio bound below 1 is impossible");
                }
            }
        }
    }

    #[test]
    fn q_switches_between_regimes() {
        // For rho <= 2mu/m - 1 the constraint coefficient is (1+rho)/2.
        // m=4, mu=2, rho=0: q = min(0.5, 0.5) -> both branches equal form.
        let b = branch_b(4, 2, 0.0);
        // [8/2 + 1 * 1/0.5] / 3 = [4+2]/3 = 2
        assert!((b - 2.0).abs() < 1e-12);
        // m=10, mu=2, rho=0.9: q = min(0.2, 0.95) = 0.2.
        let b = branch_b(10, 2, 0.9);
        let expect = (20.0 / 1.1 + 7.0 * 5.0) / 9.0;
        assert!((b - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mu must lie in 1..=m")]
    fn mu_out_of_range_panics() {
        objective(4, 5, 0.2);
    }

    #[test]
    #[should_panic(expected = "rho must lie in [0, 1]")]
    fn rho_out_of_range_panics() {
        objective(4, 2, 1.2);
    }
}
