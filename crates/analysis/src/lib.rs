#![warn(missing_docs)]
//! # mtsp-analysis — numerical analysis of the Jansen–Zhang bounds
//!
//! Executable forms of Section 4 of *Scheduling malleable tasks with
//! precedence constraints* (SPAA 2005 / JCSS 2012):
//!
//! * [`minmax`] — the min–max nonlinear program (17)/(18): the inner
//!   maximum over normalized slot lengths `(x₁, x₂)` evaluated exactly by
//!   vertex enumeration, and the two branch functions `A(μ, ρ)`, `B(μ, ρ)`;
//! * [`ratio`] — parameter selection `ρ̂* = 0.26`, `μ̂*(m)` (Eq. 19/20),
//!   the closed-form bounds of Lemma 4.7 / Lemma 4.9 / Theorem 4.1 /
//!   Corollary 4.1, and the Table 2 rows;
//! * [`ltw`] — the Lepère–Trystram–Woeginger comparison bounds (Table 3);
//! * [`grid`] — the paper's numerical grid search `δρ = 10⁻⁴` over the
//!   min–max program (Table 4), parallelized with crossbeam;
//! * [`poly`] + [`asymptotic`] — polynomial root isolation for the
//!   degree-6 asymptotics of Section 4.3 (`ρ* ≈ 0.261917`,
//!   `μ*/m → 0.325907`, `r → 3.291913`) and equation (21) for finite `m`;
//! * [`lemma46`] — the Ω₁/Ω₂ crossing machinery of Lemma 4.6 behind
//!   Figs. 3–4.

pub mod asymptotic;
pub mod grid;
pub mod lemma46;
pub mod ltw;
pub mod minmax;
pub mod poly;
pub mod ratio;

pub use grid::{grid_search, GridResult};
pub use minmax::{branch_a, branch_b, objective};
pub use ratio::{corollary_4_1_constant, our_params, table2_row, theorem_4_1_bound, Params};
