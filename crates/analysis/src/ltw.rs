//! The Lepère–Trystram–Woeginger (IJFCS 2002, reference \[18\]) comparison
//! bounds — Table 3 of the paper.
//!
//! Their two-phase algorithm (time–cost-tradeoff allotment with ρ = 1/2
//! rounding, list scheduling with cap μ) has, for a machine of `m`
//! processors, the bound
//!
//! ```text
//!   r_LTW(m) = min_{1 ≤ μ ≤ m} max{ 2m/μ,  2(2m − μ)/(m − μ + 1) }
//! ```
//!
//! The first term is the work/capping loss (their phase-1 guarantee loses a
//! factor 2 on the critical path which the `m/μ` stretch of capped tasks
//! multiplies), the second the area/path mix of the list-scheduling
//! analysis. As `m → ∞` the optimal `μ/m → (3 − √5)/2` and the bound tends
//! to `3 + √5 ≈ 5.236` — the constant quoted in the paper's introduction.

/// The inner maximum for a concrete `(m, μ)`.
pub fn ltw_objective(m: usize, mu: usize) -> f64 {
    assert!(m >= 1 && mu >= 1 && mu <= m, "need 1 <= mu <= m");
    let (mf, muf) = (m as f64, mu as f64);
    (2.0 * mf / muf).max(2.0 * (2.0 * mf - muf) / (mf - muf + 1.0))
}

/// One row of Table 3: the minimizing `μ(m)` and bound `r(m)`.
///
/// Ties are broken toward smaller `μ` (matching the paper's table).
pub fn table3_row(m: usize) -> (usize, f64) {
    let mut best = (1usize, ltw_objective(m, 1));
    for mu in 2..=m {
        let v = ltw_objective(m, mu);
        if v < best.1 - 1e-12 {
            best = (mu, v);
        }
    }
    best
}

/// The asymptotic LTW constant `3 + √5 ≈ 5.2360679…`.
pub fn ltw_asymptotic_constant() -> f64 {
    3.0 + 5f64.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper, rows (m, mu, r) for m = 2..=33.
    const TABLE3: [(usize, usize, f64); 32] = [
        (2, 1, 4.0000),
        (3, 2, 4.0000),
        (4, 2, 4.0000),
        (5, 3, 4.6667),
        (6, 3, 4.5000),
        (7, 3, 4.6667),
        (8, 4, 4.8000),
        (9, 4, 4.6667),
        (10, 4, 5.0000),
        (11, 5, 4.8570),
        (12, 5, 4.8000),
        (13, 6, 5.0000),
        (14, 6, 4.8889),
        (15, 6, 5.0000),
        (16, 7, 5.0000),
        (17, 7, 4.9091),
        (18, 8, 5.0908),
        (19, 8, 5.0000),
        (20, 8, 5.0000),
        (21, 9, 5.0768),
        (22, 9, 5.0000),
        (23, 9, 5.1111),
        (24, 10, 5.0667),
        (25, 10, 5.0000),
        (26, 10, 5.1250),
        (27, 11, 5.0588),
        (28, 11, 5.0908),
        (29, 12, 5.1111),
        (30, 12, 5.0526),
        (31, 13, 5.1578),
        (32, 13, 5.1000),
        (33, 13, 5.0768),
    ];

    #[test]
    fn table3_values_reproduced() {
        for &(m, mu_paper, r_paper) in &TABLE3 {
            let (mu, r) = table3_row(m);
            assert!(
                (r - r_paper).abs() < 2e-4,
                "m = {m}: computed r {r}, paper {r_paper}"
            );
            // The minimizing mu may tie; accept any mu achieving the value.
            // Known typo in the paper: the m = 26 row prints mu = 10, but
            // its r = 5.1250 is attained at mu = 11 (mu = 10 gives 5.2).
            if m != 26 {
                let r_at_paper_mu = ltw_objective(m, mu_paper);
                assert!(
                    (r_at_paper_mu - r_paper).abs() < 2e-4,
                    "m = {m}: paper's mu {mu_paper} gives {r_at_paper_mu}, table says {r_paper}"
                );
            } else {
                assert_eq!(mu, 11, "m = 26 minimizer");
            }
        }
    }

    #[test]
    fn asymptotics() {
        let c = ltw_asymptotic_constant();
        assert!((c - 5.23607).abs() < 1e-5);
        let (_, r) = table3_row(100_000);
        assert!((r - c).abs() < 1e-3, "r(100000) = {r}");
        // Optimal fraction tends to (3 - sqrt 5)/2.
        let (mu, _) = table3_row(100_000);
        assert!((mu as f64 / 1e5 - (3.0 - 5f64.sqrt()) / 2.0).abs() < 1e-3);
    }

    #[test]
    fn ours_beats_ltw_everywhere() {
        // The headline claim: visible improvement for every m (Table 2 vs 3).
        for m in 2..=33 {
            let (_, _, _, ours) = crate::ratio::table2_row(m);
            let (_, theirs) = table3_row(m);
            assert!(
                ours < theirs - 0.5,
                "m = {m}: ours {ours} not clearly below LTW {theirs}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "need 1 <= mu <= m")]
    fn rejects_bad_mu() {
        ltw_objective(4, 0);
    }
}
