//! Small polynomial toolkit: Horner evaluation, differentiation and robust
//! real-root isolation on an interval (sign scan + bisection), sufficient
//! for the degree-6 asymptotics of Section 4.3.

/// A univariate polynomial with coefficients in ascending degree order
/// (`coeffs[i]` multiplies `x^i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds from ascending coefficients, trimming trailing zeros.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients in ascending order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluation by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| i as f64 * c)
                .collect(),
        )
    }

    /// All real roots in `[a, b]`, found by scanning `samples` subintervals
    /// for sign changes and bisecting each bracket to absolute tolerance
    /// `tol`. Roots of even multiplicity that do not produce a sign change
    /// are *not* found (adequate for the simple roots arising here).
    pub fn roots_in(&self, a: f64, b: f64, samples: usize, tol: f64) -> Vec<f64> {
        assert!(a < b, "empty interval");
        assert!(samples >= 1, "need at least one sample interval");
        let mut roots = Vec::new();
        let step = (b - a) / samples as f64;
        let mut x0 = a;
        let mut f0 = self.eval(x0);
        for i in 1..=samples {
            let x1 = if i == samples { b } else { a + step * i as f64 };
            let f1 = self.eval(x1);
            if f0 == 0.0 {
                push_unique(&mut roots, x0, tol);
            } else if f0 * f1 < 0.0 {
                push_unique(&mut roots, self.bisect(x0, x1, tol), tol);
            }
            x0 = x1;
            f0 = f1;
        }
        if f0 == 0.0 {
            push_unique(&mut roots, x0, tol);
        }
        roots
    }

    /// Bisection on a sign-change bracket.
    fn bisect(&self, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
        let mut flo = self.eval(lo);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if hi - lo <= tol {
                return mid;
            }
            let fmid = self.eval(mid);
            if fmid == 0.0 {
                return mid;
            }
            if flo * fmid < 0.0 {
                hi = mid;
            } else {
                lo = mid;
                flo = fmid;
            }
        }
        0.5 * (lo + hi)
    }

    /// One Newton refinement pass from `x0` (falls back to `x0` when the
    /// derivative vanishes); improves bisection roots to near machine
    /// precision.
    pub fn newton_refine(&self, x0: f64, iterations: usize) -> f64 {
        let d = self.derivative();
        let mut x = x0;
        for _ in 0..iterations {
            let fx = self.eval(x);
            let dx = d.eval(x);
            if dx.abs() < 1e-300 {
                break;
            }
            let next = x - fx / dx;
            if !next.is_finite() {
                break;
            }
            if (next - x).abs() <= 1e-15 * (1.0 + x.abs()) {
                return next;
            }
            x = next;
        }
        x
    }
}

fn push_unique(roots: &mut Vec<f64>, r: f64, tol: f64) {
    if roots.iter().all(|&x| (x - r).abs() > 10.0 * tol) {
        roots.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_degree() {
        let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // 2x^2 - 3x + 1
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(0.5), 0.0);
        assert_eq!(p.eval(2.0), 3.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(3.0), 0.0);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 1.0, -3.0, 2.0]); // 2x^3-3x^2+x+5
        let d = p.derivative(); // 6x^2-6x+1
        assert_eq!(d.coeffs(), &[1.0, -6.0, 6.0]);
        let c = Polynomial::new(vec![42.0]);
        assert_eq!(c.derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn quadratic_roots() {
        let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // roots 0.5, 1
        let roots = p.roots_in(0.0, 2.0, 1000, 1e-12);
        assert_eq!(roots.len(), 2);
        assert!((roots[0] - 0.5).abs() < 1e-9);
        assert!((roots[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roots_at_endpoints() {
        let p = Polynomial::new(vec![0.0, 1.0]); // x
        let roots = p.roots_in(0.0, 1.0, 16, 1e-12);
        assert_eq!(roots.len(), 1);
        assert!(roots[0].abs() < 1e-9);
    }

    #[test]
    fn no_roots_when_positive() {
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]); // x^2+1
        assert!(p.roots_in(-10.0, 10.0, 1000, 1e-12).is_empty());
    }

    #[test]
    fn newton_refines_bisection_root() {
        let p = Polynomial::new(vec![-2.0, 0.0, 1.0]); // x^2 - 2
        let rough = p.roots_in(0.0, 2.0, 8, 1e-4)[0];
        let fine = p.newton_refine(rough, 50);
        assert!((fine - 2f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn cubic_with_three_roots() {
        // (x+1)x(x-1) = x^3 - x
        let p = Polynomial::new(vec![0.0, -1.0, 0.0, 1.0]);
        let roots = p.roots_in(-2.0, 2.0, 4000, 1e-12);
        assert_eq!(roots.len(), 3);
        assert!((roots[0] + 1.0).abs() < 1e-9);
        assert!(roots[1].abs() < 1e-9);
        assert!((roots[2] - 1.0).abs() < 1e-9);
    }
}
