//! The paper's numerical optimization of the min–max program (Table 4):
//! a grid over `ρ ∈ [0, 1]` with step `δρ` crossed with the integral
//! `μ ∈ 1..=⌊(m+1)/2⌋`, evaluating the inner maximum at every grid point.
//!
//! The search is embarrassingly parallel; [`grid_search`] fans the `μ`
//! columns out over a crossbeam scope when more than one worker is
//! requested.

use crate::minmax::objective;

/// Result of a grid search for one machine size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridResult {
    /// Machine size.
    pub m: usize,
    /// Minimizing processor cap.
    pub mu: usize,
    /// Minimizing rounding parameter.
    pub rho: f64,
    /// The minimized ratio bound.
    pub r: f64,
}

/// Minimizes the inner maximum over the grid for one `μ` column.
fn best_for_mu(m: usize, mu: usize, steps: usize) -> (f64, f64) {
    let mut best = (0.0f64, f64::INFINITY);
    for i in 0..=steps {
        let rho = i as f64 / steps as f64;
        let v = objective(m, mu, rho);
        if v < best.1 {
            best = (rho, v);
        }
    }
    best
}

/// Grid search with step `δρ = 1/steps` (the paper uses `steps = 10⁴`,
/// i.e. `δρ = 0.0001`) over `μ ∈ 1..=⌊(m+1)/2⌋`, using up to `workers`
/// threads.
///
/// Deterministic: ties prefer smaller `μ`, then smaller `ρ`.
pub fn grid_search(m: usize, steps: usize, workers: usize) -> GridResult {
    assert!(m >= 1 && steps >= 1, "need m >= 1 and steps >= 1");
    let mu_max = m.div_ceil(2);
    let mu_max = mu_max.max(1);
    let mut per_mu: Vec<(f64, f64)> = vec![(0.0, f64::INFINITY); mu_max];
    let workers = workers.clamp(1, mu_max);
    if workers == 1 {
        for (mu_idx, slot) in per_mu.iter_mut().enumerate() {
            *slot = best_for_mu(m, mu_idx + 1, steps);
        }
    } else {
        let chunk = mu_max.div_ceil(workers);
        crossbeam::thread::scope(|s| {
            for (w, slice) in per_mu.chunks_mut(chunk).enumerate() {
                s.spawn(move |_| {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        let mu = w * chunk + i + 1;
                        *slot = best_for_mu(m, mu, steps);
                    }
                });
            }
        })
        .expect("grid worker panicked");
    }
    let mut best = GridResult {
        m,
        mu: 1,
        rho: per_mu[0].0,
        r: per_mu[0].1,
    };
    for (i, &(rho, r)) in per_mu.iter().enumerate().skip(1) {
        if r < best.r - 1e-12 {
            best = GridResult {
                m,
                mu: i + 1,
                rho,
                r,
            };
        }
    }
    best
}

/// Runs [`grid_search`] for every `m` in the range (the full Table 4).
pub fn table4(
    ms: impl IntoIterator<Item = usize>,
    steps: usize,
    workers: usize,
) -> Vec<GridResult> {
    ms.into_iter()
        .map(|m| grid_search(m, steps, workers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 4 of the paper: (m, mu, rho, r) for m = 2..=33.
    #[allow(clippy::approx_constant)] // 0.318 is the paper's rho(13), not 1/pi
    const TABLE4: [(usize, usize, f64, f64); 32] = [
        (2, 1, 0.000, 2.0000),
        (3, 2, 0.098, 2.4880),
        (4, 2, 0.243, 2.5904),
        (5, 2, 0.200, 2.6389),
        (6, 3, 0.243, 2.9142),
        (7, 3, 0.292, 2.8777),
        (8, 3, 0.250, 2.8571),
        (9, 3, 0.000, 3.0000),
        (10, 4, 0.310, 2.9992),
        (11, 4, 0.273, 2.9671),
        (12, 4, 0.067, 3.0460),
        (13, 5, 0.318, 3.0664),
        (14, 5, 0.286, 3.0333),
        (15, 5, 0.111, 3.0802),
        (16, 6, 0.325, 3.1090),
        (17, 6, 0.294, 3.0776),
        (18, 6, 0.143, 3.1065),
        (19, 7, 0.328, 3.1384),
        (20, 7, 0.300, 3.1092),
        (21, 7, 0.167, 3.1273),
        (22, 8, 0.331, 3.1600),
        (23, 8, 0.304, 3.1330),
        (24, 8, 0.185, 3.1441),
        (25, 9, 0.333, 3.1765),
        (26, 9, 0.308, 3.1515),
        (27, 9, 0.200, 3.1579),
        (28, 10, 0.335, 3.1895),
        (29, 10, 0.310, 3.1663),
        (30, 10, 0.212, 3.1695),
        (31, 10, 0.129, 3.1972),
        (32, 11, 0.312, 3.1785),
        (33, 11, 0.222, 3.1794),
    ];

    #[test]
    fn table4_r_values_reproduced() {
        // delta-rho 1e-4 as in the paper; serial is fast enough for a test.
        for &(m, mu_paper, rho_paper, r_paper) in &TABLE4 {
            let g = grid_search(m, 10_000, 1);
            assert!(
                (g.r - r_paper).abs() < 2e-4,
                "m = {m}: grid r {} vs paper {r_paper}",
                g.r
            );
            // The paper's own (mu, rho) must evaluate to its r. The table
            // prints rho rounded to three decimals, which perturbs the
            // objective by up to ~5e-4 (e.g. m = 11: rho 0.2727 -> 0.273).
            let check = objective(m, mu_paper, rho_paper);
            assert!(
                (check - r_paper).abs() < 1e-3,
                "m = {m}: paper row inconsistent: {check} vs {r_paper}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        for m in [5usize, 12, 33] {
            let a = grid_search(m, 2_000, 1);
            let b = grid_search(m, 2_000, 4);
            assert_eq!(a, b, "m = {m}");
        }
    }

    #[test]
    fn grid_never_beats_or_loses_to_table2_rows_incorrectly() {
        // The numerical optimum is <= the fixed-parameter Table 2 value.
        for m in 2..=33 {
            let (_, _, _, table2_r) = crate::ratio::table2_row(m);
            let g = grid_search(m, 10_000, 2);
            assert!(
                g.r <= table2_r + 1e-9,
                "m = {m}: grid {} vs table2 {table2_r}",
                g.r
            );
        }
    }

    #[test]
    fn table4_helper_runs_ranges() {
        let rows = table4(2..=4, 100, 1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].m, 2);
        assert!((rows[0].r - 2.0).abs() < 1e-6);
    }

    #[test]
    fn m1_trivial() {
        let g = grid_search(1, 10, 1);
        assert_eq!(g.mu, 1);
        // single machine: ratio bound 2m/(2-rho)/(m-mu+1) = 2/(2-rho),
        // minimized at rho = 0 -> exactly 1.
        assert!((g.r - 1.0).abs() < 1e-9);
    }
}
