//! Parameter selection and the paper's closed-form ratio bounds
//! (Eq. 19/20, Lemma 4.7, Lemma 4.9, Theorem 4.1, Corollary 4.1, Table 2).

use crate::minmax::objective;

/// Algorithm parameters: the rounding parameter `ρ` of phase 1 and the
/// allotment cap `μ` of phase 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Rounding parameter `ρ ∈ [0, 1]`.
    pub rho: f64,
    /// Processor cap `μ ∈ 1..=⌈m/2⌉` used by LIST.
    pub mu: usize,
}

/// The paper's fixed rounding parameter `ρ̂* = 0.26` (Eq. 19).
pub const RHO_HAT: f64 = 0.26;

/// `μ̂*(m) = (113m − √(6469m² − 6300m))/100` (Eq. 20), the continuous
/// minimizer of the min–max program at `ρ = 0.26` (via Lemma 4.8).
pub fn mu_hat(m: usize) -> f64 {
    let mf = m as f64;
    (113.0 * mf - (6469.0 * mf * mf - 6300.0 * mf).sqrt()) / 100.0
}

/// Lemma 4.8: the continuous minimizer `μ*(ρ)` of the inner maximum for
/// fixed `ρ > 2μ/m − 1`.
pub fn mu_star(m: usize, rho: f64) -> f64 {
    let mf = m as f64;
    ((2.0 + rho) * mf - ((rho * rho + 2.0 * rho + 2.0) * mf * mf - 2.0 * (1.0 + rho) * mf).sqrt())
        / 2.0
}

/// The `(μ, ρ)` the paper's algorithm uses for a machine of `m` processors
/// (Table 2): special cases for `m ≤ 5`, else `ρ = 0.26` and the better of
/// `⌊μ̂*⌋ / ⌈μ̂*⌉`.
pub fn our_params(m: usize) -> Params {
    assert!(m >= 1, "machine must have at least one processor");
    match m {
        1 => Params { rho: 0.0, mu: 1 },
        2 => Params { rho: 0.0, mu: 1 },
        3 => Params { rho: 0.098, mu: 2 },
        4 => Params { rho: 0.0, mu: 2 },
        5 => Params {
            rho: RHO_HAT,
            mu: 2,
        },
        _ => {
            let h = mu_hat(m);
            let lo = (h.floor() as usize).clamp(1, m);
            let hi = (h.ceil() as usize).clamp(1, m);
            let mu = if objective(m, lo, RHO_HAT) <= objective(m, hi, RHO_HAT) {
                lo
            } else {
                hi
            };
            Params { rho: RHO_HAT, mu }
        }
    }
}

/// One row of Table 2: `(m, μ(m), ρ(m), r(m))` where `r` is the value of
/// the min–max objective at the chosen parameters.
pub fn table2_row(m: usize) -> (usize, usize, f64, f64) {
    let p = our_params(m);
    (m, p.mu, p.rho, objective(m, p.mu, p.rho))
}

/// Lemma 4.7: the optimal bound in the regime `ρ ≤ 2μ/m − 1`.
pub fn lemma_4_7_bound(m: usize) -> f64 {
    assert!(m >= 2, "lemma 4.7 needs m >= 2");
    let mf = m as f64;
    match m {
        3 => 2.0 * (2.0 + 3f64.sqrt()) / 3.0,
        5 => 2.0 * (7.0 + 2.0 * 10f64.sqrt()) / 9.0,
        _ if m % 2 == 1 => {
            2.0 * mf * (4.0 * mf * mf - mf + 1.0) / ((mf + 1.0).powi(2) * (2.0 * mf - 1.0))
        }
        _ => 4.0 * mf / (mf + 2.0),
    }
}

/// Lemma 4.9: the closed-form bound for `ρ = 0.26`, `μ = μ̂*(m)`
/// (continuous μ — an upper bound on the Table 2 values for `m ≥ 6`).
pub fn lemma_4_9_bound(m: usize) -> f64 {
    let mf = m as f64;
    100.0 / 63.0
        + 100.0 / 345_303.0
            * (63.0 * mf - 87.0)
            * ((6469.0 * mf * mf - 6300.0 * mf).sqrt() + 13.0 * mf)
            / (mf * mf - mf)
}

/// Theorem 4.1: the proven approximation-ratio bound of the algorithm.
pub fn theorem_4_1_bound(m: usize) -> f64 {
    match m {
        0 | 1 => 1.0,
        2 => 2.0,
        3 => 2.0 * (2.0 + 3f64.sqrt()) / 3.0,
        4 => 8.0 / 3.0,
        5 => 2.0 * (7.0 + 2.0 * 10f64.sqrt()) / 9.0,
        _ => lemma_4_9_bound(m),
    }
}

/// Corollary 4.1: the uniform bound
/// `100/63 + 100(√6469 + 13)/5481 ≈ 3.291919`, also the `m → ∞` limit of
/// Theorem 4.1.
pub fn corollary_4_1_constant() -> f64 {
    100.0 / 63.0 + 100.0 * (6469f64.sqrt() + 13.0) / 5481.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, rows (m, mu, rho, r) for m = 2..=33.
    const TABLE2: [(usize, usize, f64, f64); 32] = [
        (2, 1, 0.0, 2.0),
        (3, 2, 0.098, 2.4880),
        (4, 2, 0.0, 2.6667),
        (5, 2, 0.260, 2.6868),
        (6, 3, 0.260, 2.9146),
        (7, 3, 0.260, 2.8790),
        (8, 3, 0.260, 2.8659),
        (9, 4, 0.260, 3.0469),
        (10, 4, 0.260, 3.0026),
        (11, 4, 0.260, 2.9693),
        (12, 5, 0.260, 3.1130),
        (13, 5, 0.260, 3.0712),
        (14, 5, 0.260, 3.0378),
        (15, 6, 0.260, 3.1527),
        (16, 6, 0.260, 3.1149),
        (17, 6, 0.260, 3.0834),
        (18, 7, 0.260, 3.1792),
        (19, 7, 0.260, 3.1451),
        (20, 7, 0.260, 3.1160),
        (21, 8, 0.260, 3.1981),
        (22, 8, 0.260, 3.1673),
        (23, 8, 0.260, 3.1404),
        (24, 8, 0.260, 3.2110),
        (25, 9, 0.260, 3.1843),
        (26, 9, 0.260, 3.1594),
        (27, 9, 0.260, 3.2123),
        (28, 10, 0.260, 3.1976),
        (29, 10, 0.260, 3.1746),
        (30, 10, 0.260, 3.2135),
        (31, 11, 0.260, 3.2085),
        (32, 11, 0.260, 3.1870),
        (33, 11, 0.260, 3.2144),
    ];

    #[test]
    fn table2_reproduced_exactly() {
        for &(m, mu, rho, r) in &TABLE2 {
            let (m2, mu2, rho2, r2) = table2_row(m);
            assert_eq!(m2, m);
            assert_eq!(mu2, mu, "mu mismatch at m = {m}");
            assert!((rho2 - rho).abs() < 1e-9, "rho mismatch at m = {m}");
            assert!(
                (r2 - r).abs() < 5e-5,
                "r mismatch at m = {m}: computed {r2}, paper {r}"
            );
        }
    }

    #[test]
    fn mu_hat_monotone_and_near_fraction() {
        // mu_hat(m)/m tends to (113 - sqrt(6469))/100 ~ 0.3257.
        let frac = (113.0 - 6469f64.sqrt()) / 100.0;
        assert!((mu_hat(1_000_000) / 1e6 - frac).abs() < 1e-4);
        for m in 6..100 {
            assert!(mu_hat(m + 1) > mu_hat(m));
        }
    }

    #[test]
    fn mu_star_at_rho_hat_matches_eq20() {
        for m in [6usize, 10, 33, 100] {
            assert!((mu_star(m, RHO_HAT) - mu_hat(m)).abs() < 1e-9, "m = {m}");
        }
    }

    #[test]
    fn lemma_4_7_values() {
        assert!((lemma_4_7_bound(2) - 2.0).abs() < 1e-12);
        assert!((lemma_4_7_bound(3) - 2.48803).abs() < 1e-5);
        assert!((lemma_4_7_bound(4) - 8.0 / 3.0).abs() < 1e-12);
        assert!((lemma_4_7_bound(5) - 2.0 * (7.0 + 2.0 * 10f64.sqrt()) / 9.0).abs() < 1e-12);
        // m = 7 (odd >= 7): 2*7*(4*49-7+1)/[64*13] = 14*190/832
        assert!((lemma_4_7_bound(7) - 14.0 * 190.0 / 832.0).abs() < 1e-12);
        // even: 4m/(m+2)
        assert!((lemma_4_7_bound(6) - 3.0).abs() < 1e-12);
        // limit 4 as m -> infinity (even case)
        assert!((lemma_4_7_bound(1_000_000) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn lemma_4_9_upper_bounds_table2() {
        // Lemma 4.9 is an upper bound on the computed objective for m >= 6.
        for m in 6..=33 {
            let (_, _, _, r) = table2_row(m);
            assert!(
                lemma_4_9_bound(m) >= r - 5e-5,
                "m = {m}: lemma {} < table {r}",
                lemma_4_9_bound(m)
            );
        }
    }

    #[test]
    fn corollary_constant_value() {
        let c = corollary_4_1_constant();
        assert!((c - 3.291919).abs() < 5e-7, "constant = {c}");
        // Theorem 4.1 tends to the corollary constant.
        assert!((theorem_4_1_bound(10_000_000) - c).abs() < 1e-5);
        // And uniformly bounds it for every m checked.
        for m in 2..=500 {
            assert!(theorem_4_1_bound(m) <= c + 1e-9, "m = {m}");
        }
    }

    #[test]
    fn theorem_4_1_bounds_table2_rows() {
        // The proven bound dominates the evaluated objective at the chosen
        // parameters for m != 5 (for m = 5 the paper notes the evaluated
        // objective 2.6868 is *below* the theorem's listed 2.9609).
        for m in 2..=33 {
            let (_, _, _, r) = table2_row(m);
            if m == 5 {
                assert!(r < theorem_4_1_bound(m));
            } else {
                assert!(
                    theorem_4_1_bound(m) >= r - 5e-5,
                    "m = {m}: theorem {} < table {r}",
                    theorem_4_1_bound(m)
                );
            }
        }
    }

    #[test]
    fn lemma_4_7_matches_regime_constrained_grid() {
        // Lemma 4.7 claims the optimum of the min-max program restricted
        // to the regime rho <= 2mu/m - 1; verify the closed forms against
        // a direct grid search over that regime.
        for m in 2usize..=24 {
            let mut best = f64::INFINITY;
            for mu in 1..=m.div_ceil(2) {
                let cap = (2.0 * mu as f64 / m as f64 - 1.0).min(1.0);
                if cap < 0.0 {
                    continue;
                }
                let steps = 4000;
                for i in 0..=steps {
                    let rho = cap * i as f64 / steps as f64;
                    best = best.min(crate::minmax::objective(m, mu, rho));
                }
            }
            let closed = lemma_4_7_bound(m);
            assert!(
                (best - closed).abs() < 2e-3,
                "m = {m}: grid {best} vs Lemma 4.7 {closed}"
            );
        }
    }

    #[test]
    fn lemma_4_8_mu_star_is_continuous_argmin() {
        // mu*(rho) minimizes max(A, B) over continuous mu (golden-section
        // verification at several (m, rho) points in the rho > 2mu/m - 1
        // regime).
        for &(m, rho) in &[(10usize, 0.26), (20, 0.31), (33, 0.2), (64, 0.26)] {
            let mf = m as f64;
            let h = |mu: f64| {
                let a = (2.0 * mf / (2.0 - rho) + (mf - mu) * 2.0 / (1.0 + rho)) / (mf - mu + 1.0);
                let q: f64 = (mu / mf).min((1.0 + rho) / 2.0);
                let b = (2.0 * mf / (2.0 - rho) + (mf - 2.0 * mu + 1.0) / q) / (mf - mu + 1.0);
                a.max(b)
            };
            let (mut lo, mut hi) = (1.0f64, (m as f64 + 1.0) / 2.0);
            let phi = (5f64.sqrt() - 1.0) / 2.0;
            for _ in 0..200 {
                let x1 = hi - phi * (hi - lo);
                let x2 = lo + phi * (hi - lo);
                if h(x1) < h(x2) {
                    hi = x2;
                } else {
                    lo = x1;
                }
            }
            let numeric = 0.5 * (lo + hi);
            let closed = mu_star(m, rho);
            assert!(
                (numeric - closed).abs() < 1e-4,
                "m = {m}, rho = {rho}: numeric {numeric} vs Lemma 4.8 {closed}"
            );
        }
    }

    #[test]
    fn params_for_tiny_machines() {
        assert_eq!(our_params(1), Params { rho: 0.0, mu: 1 });
        let p = our_params(2);
        assert_eq!(p.mu, 1);
        assert_eq!(p.rho, 0.0);
    }

    #[test]
    fn rho_hat_satisfies_regime_condition() {
        // The paper checks rho-hat = 0.26 > 2 mu-hat/m - 1 for the general
        // rows (m >= 6); the m <= 5 special cases use the other regime.
        for m in 6..=200 {
            let p = our_params(m);
            assert!(
                p.rho > 2.0 * p.mu as f64 / m as f64 - 1.0 - 1e-12,
                "m = {m}: rho {} vs 2mu/m-1 {}",
                p.rho,
                2.0 * p.mu as f64 / m as f64 - 1.0
            );
        }
    }
}
