//! Section 4.3: asymptotic behaviour of the approximation ratio.
//!
//! Setting the derivative of `A(μ*(ρ), ρ)` to zero and clearing the square
//! root yields equation (21), `m²(1+m)(1+ρ)² Σ c_i ρ^i = 0`; as `m → ∞`
//! the degree-6 factor tends to
//! `ρ⁶ + 6ρ⁵ + 3ρ⁴ + 14ρ³ + 21ρ² + 24ρ − 8`, whose only root in `(0, 1)`
//! is `ρ* ≈ 0.261917`, giving `μ*/m → 0.325907` and ratio `→ 3.291913`.

use crate::poly::Polynomial;
use crate::ratio::mu_star;

/// The asymptotic optimality condition
/// `ρ⁶ + 6ρ⁵ + 3ρ⁴ + 14ρ³ + 21ρ² + 24ρ − 8 = 0` (Section 4.3).
pub fn asymptotic_polynomial() -> Polynomial {
    Polynomial::new(vec![-8.0, 24.0, 21.0, 14.0, 3.0, 6.0, 1.0])
}

/// The asymptotically optimal rounding parameter `ρ* ≈ 0.261917`: the only
/// root of [`asymptotic_polynomial`] in `(0, 1)`.
pub fn asymptotic_rho() -> f64 {
    let p = asymptotic_polynomial();
    let roots = p.roots_in(0.0, 1.0, 4096, 1e-12);
    debug_assert_eq!(roots.len(), 1, "expected a unique root in (0,1)");
    p.newton_refine(roots[0], 50)
}

/// The `m → ∞` limit of `μ*(ρ)/m` (Lemma 4.8):
/// `((2+ρ) − √(ρ² + 2ρ + 2))/2`.
pub fn mu_fraction(rho: f64) -> f64 {
    ((2.0 + rho) - (rho * rho + 2.0 * rho + 2.0).sqrt()) / 2.0
}

/// The `m → ∞` ratio bound for rounding parameter `ρ` with the balanced
/// `μ/m` fraction: the limit of branch `A` (equals the limit of `B`).
pub fn asymptotic_objective(rho: f64) -> f64 {
    let x = mu_fraction(rho);
    (2.0 / (2.0 - rho) + (1.0 - x) * 2.0 / (1.0 + rho)) / (1.0 - x)
}

/// The asymptotically best ratio `r → 3.291913` (at `ρ = ρ*`).
pub fn asymptotic_ratio() -> f64 {
    asymptotic_objective(asymptotic_rho())
}

/// Coefficients `c₀ … c₆` of the finite-`m` optimality equation (21).
pub fn equation21_coeffs(m: usize) -> [f64; 7] {
    let m = m as f64;
    [
        -8.0 * (m - 1.0) * (m - 1.0) * (m - 2.0),
        8.0 * (m - 1.0) * (m - 2.0) * (3.0 * m - 2.0),
        21.0 * m * m * m - 59.0 * m * m + 16.0 * m + 24.0,
        2.0 * (m + 1.0) * (7.0 * m * m - 7.0 * m - 4.0),
        3.0 * m * m * m - 7.0 * m * m + 15.0 * m + 1.0,
        2.0 * m * (3.0 * m * m - 4.0 * m - 1.0),
        m * m * (m + 1.0),
    ]
}

/// The finite-`m` degree-6 optimality polynomial of equation (21).
pub fn equation21_polynomial(m: usize) -> Polynomial {
    Polynomial::new(equation21_coeffs(m).to_vec())
}

/// The *continuous-μ* ratio bound `A(μ*(ρ), ρ)` for finite `m` — the
/// function whose stationary points equation (21) describes.
pub fn continuous_objective(m: usize, rho: f64) -> f64 {
    let mf = m as f64;
    let mu = mu_star(m, rho);
    (2.0 * mf / (2.0 - rho) + (mf - mu) * 2.0 / (1.0 + rho)) / (mf - mu + 1.0)
}

/// The continuous-μ optimal `ρ` for finite `m`: among the real roots of
/// equation (21) in `(0, 1)` (squaring may introduce spurious ones), the
/// one minimizing [`continuous_objective`]; falls back to a fine grid scan
/// if no root qualifies (small `m` where the optimum sits at `ρ = 0`).
pub fn optimal_rho(m: usize) -> f64 {
    let poly = equation21_polynomial(m);
    let mut best = (0.0f64, continuous_objective(m, 0.0));
    for r in poly.roots_in(1e-9, 1.0 - 1e-9, 8192, 1e-12) {
        let r = poly.newton_refine(r, 50).clamp(0.0, 1.0);
        let v = continuous_objective(m, r);
        if v < best.1 {
            best = (r, v);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmax;

    #[test]
    fn rho_star_value() {
        let r = asymptotic_rho();
        assert!((r - 0.261917).abs() < 1e-6, "rho* = {r}");
        // It really is a root.
        assert!(asymptotic_polynomial().eval(r).abs() < 1e-10);
    }

    #[test]
    fn mu_fraction_value() {
        let x = mu_fraction(asymptotic_rho());
        assert!((x - 0.325907).abs() < 1e-5, "mu fraction = {x}");
    }

    #[test]
    fn asymptotic_ratio_value() {
        let r = asymptotic_ratio();
        assert!((r - 3.291913).abs() < 1e-5, "asymptotic ratio = {r}");
        // The fixed rho = 0.26 gives the marginally larger 3.291919
        // (Corollary 4.1 constant).
        let fixed = asymptotic_objective(0.26);
        assert!((fixed - crate::ratio::corollary_4_1_constant()).abs() < 1e-6);
        assert!(r <= fixed);
    }

    #[test]
    fn rho_star_is_asymptotic_minimizer() {
        let r = asymptotic_rho();
        let v = asymptotic_objective(r);
        for i in 0..=100 {
            let rho = i as f64 / 100.0;
            assert!(
                v <= asymptotic_objective(rho) + 1e-9,
                "rho = {rho} beats rho*"
            );
        }
    }

    #[test]
    fn equation21_tends_to_asymptotic_polynomial() {
        // c_i / (m^2 (m+1)) tends to the asymptotic coefficients.
        let m = 10_000_000usize;
        let c = equation21_coeffs(m);
        let scale = (m as f64) * (m as f64) * (m as f64 + 1.0);
        let limit = [-8.0, 24.0, 21.0, 14.0, 3.0, 6.0, 1.0];
        for (i, &l) in limit.iter().enumerate() {
            assert!(
                (c[i] / scale - l).abs() < 1e-4,
                "c{i}/m^3 = {} vs {l}",
                c[i] / scale
            );
        }
    }

    #[test]
    fn optimal_rho_converges_to_rho_star() {
        let target = asymptotic_rho();
        let r = optimal_rho(100_000);
        assert!((r - target).abs() < 1e-3, "optimal_rho(1e5) = {r}");
    }

    #[test]
    fn optimal_rho_never_loses_to_fixed_rho() {
        for m in [6usize, 10, 20, 33, 64] {
            let r = optimal_rho(m);
            assert!(
                continuous_objective(m, r) <= continuous_objective(m, 0.26) + 1e-9,
                "m = {m}"
            );
        }
    }

    #[test]
    fn continuous_objective_lower_bounds_integral_rows() {
        // With integral mu the objective can only be >= the continuous
        // bound at the same rho.
        for m in 6..=33 {
            let (_, mu, rho, r) = crate::ratio::table2_row(m);
            let cont = continuous_objective(m, rho);
            assert!(
                r >= cont - 5e-4,
                "m = {m}: integral {r} vs continuous {cont}"
            );
            let _ = mu;
        }
    }

    #[test]
    fn m2_edge_case_has_c0_zero() {
        let c = equation21_coeffs(2);
        assert_eq!(c[0], 0.0); // (m-2) factor

        // And indeed rho = 0 is optimal for m = 2 (Table 4).
        let r = optimal_rho(2);
        let v = continuous_objective(2, r);
        assert!(v <= continuous_objective(2, 0.0) + 1e-9);
        let _ = minmax::objective(2, 1, r.clamp(0.0, 1.0));
    }
}
