//! `mtsp` — command-line interface to the malleable-task scheduler.
//!
//! ```text
//! mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
//! mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
//! mtsp check <file>
//! mtsp batch <dir|file>... [--jobs N] [--cache] [--fresh-contexts]
//! mtsp bench-throughput --n-instances K [--jobs N] [--distinct D] [--n N] [--m M]
//! mtsp bounds <m>
//! mtsp tables [2|3|4|all]
//! ```
//!
//! Instances use the plain-text format of `mtsp::model::textio` (see
//! `mtsp generate` to produce one).

use mtsp::analysis::{grid, ltw, ratio};
use mtsp::core::improve::{improve_allotment, ImproveOptions};
use mtsp::core::two_phase::{schedule_jz_with, JzConfig, Phase1};
use mtsp::model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp::model::textio;
use mtsp::prelude::*;
use std::fmt::Write as _;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Solve {
        file: String,
        rho: Option<f64>,
        mu: Option<usize>,
        priority: Priority,
        improve: bool,
        gantt: bool,
        phase1: Phase1,
    },
    Generate {
        dag: DagFamily,
        curve: CurveFamily,
        n: usize,
        m: usize,
        seed: u64,
    },
    Check {
        file: String,
    },
    Batch {
        paths: Vec<String>,
        jobs: usize,
        cache: bool,
        fresh_contexts: bool,
    },
    BenchThroughput {
        n_instances: usize,
        jobs: usize,
        distinct: usize,
        n: usize,
        m: usize,
        seed: u64,
    },
    Bounds {
        m: usize,
    },
    Tables {
        which: String,
    },
    Help,
}

const USAGE: &str = "\
mtsp — scheduling malleable tasks with precedence constraints (Jansen-Zhang)

USAGE:
  mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
             [--phase1 lp|bisection]
  mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
  mtsp check <file>
  mtsp batch <dir|file>... [--jobs N] [--cache] [--fresh-contexts]
  mtsp bench-throughput --n-instances K [--jobs N] [--distinct D] [--n N] [--m M]
                        [--seed S]
  mtsp bounds <m>
  mtsp tables [2|3|4|all]

batch solves every instance file (directories expand to their non-hidden
files, sorted by name) on a deterministic worker pool: results print in
submission order and are byte-identical for any --jobs value; --cache
memoizes repeated instances; --fresh-contexts rebuilds the per-worker LP
solve context for every job instead of reusing it (same bytes out, only
slower — a determinism/debugging aid). Throughput metrics go to stderr.

DAG families:   independent chain layered series-parallel fork-join cholesky
                wavefront random-tree
curve families: power-law amdahl random-concave logarithmic saturating mixed
";

fn parse_dag(s: &str) -> Result<DagFamily, String> {
    Ok(match s {
        "independent" => DagFamily::Independent,
        "chain" => DagFamily::Chain,
        "layered" => DagFamily::Layered,
        "series-parallel" => DagFamily::SeriesParallel,
        "fork-join" => DagFamily::ForkJoin,
        "cholesky" => DagFamily::Cholesky,
        "wavefront" => DagFamily::Wavefront,
        "random-tree" => DagFamily::RandomTree,
        other => return Err(format!("unknown dag family '{other}'")),
    })
}

fn parse_curve(s: &str) -> Result<CurveFamily, String> {
    Ok(match s {
        "power-law" => CurveFamily::PowerLaw,
        "amdahl" => CurveFamily::Amdahl,
        "random-concave" => CurveFamily::RandomConcave,
        "logarithmic" => CurveFamily::Logarithmic,
        "saturating" => CurveFamily::Saturating,
        "mixed" => CurveFamily::Mixed,
        other => return Err(format!("unknown curve family '{other}'")),
    })
}

fn parse_priority(s: &str) -> Result<Priority, String> {
    Ok(match s {
        "id" => Priority::TaskId,
        "bl" => Priority::BottomLevel,
        "wf" => Priority::WidestFirst,
        other => return Err(format!("unknown priority '{other}' (id|bl|wf)")),
    })
}

/// Parses `argv[1..]` into a [`Command`].
fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<&str> = it.collect();
    let take_value = |rest: &mut Vec<&str>, flag: &str| -> Result<Option<String>, String> {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            if pos + 1 >= rest.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = rest[pos + 1].to_string();
            rest.drain(pos..=pos + 1);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    };
    let take_flag = |rest: &mut Vec<&str>, flag: &str| -> bool {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            rest.remove(pos);
            true
        } else {
            false
        }
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solve" => {
            let rho = take_value(&mut rest, "--rho")?
                .map(|v| v.parse::<f64>().map_err(|e| format!("bad --rho: {e}")))
                .transpose()?;
            let mu = take_value(&mut rest, "--mu")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --mu: {e}")))
                .transpose()?;
            let priority = take_value(&mut rest, "--priority")?
                .map(|v| parse_priority(&v))
                .transpose()?
                .unwrap_or(Priority::TaskId);
            let improve = take_flag(&mut rest, "--improve");
            let gantt = take_flag(&mut rest, "--gantt");
            let phase1 = match take_value(&mut rest, "--phase1")?.as_deref() {
                None | Some("lp") => Phase1::Lp,
                Some("bisection") => Phase1::Bisection,
                Some(other) => return Err(format!("unknown phase1 '{other}' (lp|bisection)")),
            };
            let [file] = rest.as_slice() else {
                return Err("solve needs exactly one instance file".into());
            };
            Ok(Command::Solve {
                file: file.to_string(),
                rho,
                mu,
                priority,
                improve,
                gantt,
                phase1,
            })
        }
        "generate" => {
            let dag = parse_dag(&take_value(&mut rest, "--dag")?.ok_or("generate needs --dag")?)?;
            let curve =
                parse_curve(&take_value(&mut rest, "--curve")?.ok_or("generate needs --curve")?)?;
            let n = take_value(&mut rest, "--n")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --n: {e}")))
                .transpose()?
                .unwrap_or(20);
            let m = take_value(&mut rest, "--m")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --m: {e}")))
                .transpose()?
                .unwrap_or(8);
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            Ok(Command::Generate {
                dag,
                curve,
                n,
                m,
                seed,
            })
        }
        "check" => {
            let [file] = rest.as_slice() else {
                return Err("check needs exactly one instance file".into());
            };
            Ok(Command::Check {
                file: file.to_string(),
            })
        }
        "batch" => {
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let cache = take_flag(&mut rest, "--cache");
            let fresh_contexts = take_flag(&mut rest, "--fresh-contexts");
            if rest.is_empty() {
                return Err("batch needs at least one file or directory".into());
            }
            Ok(Command::Batch {
                paths: rest.iter().map(|s| s.to_string()).collect(),
                jobs,
                cache,
                fresh_contexts,
            })
        }
        "bench-throughput" => {
            let n_instances = take_value(&mut rest, "--n-instances")?
                .ok_or("bench-throughput needs --n-instances")?
                .parse::<usize>()
                .map_err(|e| format!("bad --n-instances: {e}"))?;
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let distinct = take_value(&mut rest, "--distinct")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --distinct: {e}"))
                })
                .transpose()?
                .unwrap_or(8);
            let n = take_value(&mut rest, "--n")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --n: {e}")))
                .transpose()?
                .unwrap_or(20);
            let m = take_value(&mut rest, "--m")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --m: {e}")))
                .transpose()?
                .unwrap_or(8);
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            if n_instances == 0 || distinct == 0 || n == 0 || m == 0 {
                return Err("--n-instances, --distinct, --n and --m must be positive".into());
            }
            Ok(Command::BenchThroughput {
                n_instances,
                jobs,
                distinct,
                n,
                m,
                seed,
            })
        }
        "bounds" => {
            let [m] = rest.as_slice() else {
                return Err("bounds needs a machine size".into());
            };
            Ok(Command::Bounds {
                m: m.parse().map_err(|e| format!("bad machine size: {e}"))?,
            })
        }
        "tables" => {
            let which = rest.first().copied().unwrap_or("all").to_string();
            if !["2", "3", "4", "all"].contains(&which.as_str()) {
                return Err(format!("unknown table '{which}' (2|3|4|all)"));
            }
            Ok(Command::Tables { which })
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Expands the `batch` path arguments: files pass through, directories
/// expand to their non-hidden regular files sorted by name.
fn expand_batch_paths(paths: &[String]) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = std::path::Path::new(p);
        if path.is_dir() {
            let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("{p}: {e}"))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|q| {
                    q.is_file()
                        && !q
                            .file_name()
                            .is_some_and(|n| n.to_string_lossy().starts_with('.'))
                })
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("{p}: directory contains no instance files"));
            }
            files.extend(entries);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    Ok(files)
}

/// Executes a command, returning the text to print.
fn run(cmd: Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Generate {
            dag,
            curve,
            n,
            m,
            seed,
        } => {
            let ins = random_instance(dag, curve, n, m, seed);
            out.push_str(&textio::write_instance(&ins));
        }
        Command::Check { file } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let reports = ins.verify_assumptions();
            let bad: Vec<usize> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.admissible())
                .map(|(j, _)| j)
                .collect();
            if bad.is_empty() {
                let _ = writeln!(out, "all tasks satisfy Assumptions 1 and 2: admissible");
            } else {
                let _ = writeln!(out, "inadmissible tasks (A1/A2 violated): {bad:?}");
            }
            let _ = writeln!(
                out,
                "combinatorial lower bound: {:.6}",
                ins.combinatorial_lower_bound()
            );
            let _ = writeln!(
                out,
                "serial upper bound:        {:.6}",
                ins.serial_upper_bound()
            );
        }
        Command::Batch {
            paths,
            jobs,
            cache,
            fresh_contexts,
        } => {
            let files = expand_batch_paths(&paths)?;
            // Unreadable/unparsable files become per-job error lines (like
            // solver failures) instead of aborting the whole batch — a
            // directory may mix instance files with a stray README. Parsed
            // instances move into the job list; `outcomes` remembers which
            // file index solved vs failed to parse.
            let mut instances = Vec::with_capacity(files.len());
            let mut outcomes: Vec<Result<(), String>> = Vec::with_capacity(files.len());
            for f in &files {
                let parsed = std::fs::read_to_string(f)
                    .map_err(|e| format!("{}: {e}", f.display()))
                    .and_then(|text| {
                        textio::parse_instance(&text).map_err(|e| format!("{}: {e}", f.display()))
                    });
                match parsed {
                    Ok(ins) => {
                        instances.push(ins);
                        outcomes.push(Ok(()));
                    }
                    Err(msg) => outcomes.push(Err(msg)),
                }
            }
            let engine = Engine::new(EngineConfig {
                workers: jobs,
                cache,
                reuse_context: !fresh_contexts,
                ..EngineConfig::default()
            });
            let report = engine.solve_batch(&instances);
            let _ = writeln!(out, "batch: {} instance(s)", files.len());
            for (i, f) in files.iter().enumerate() {
                let _ = writeln!(out, "  [{i}] {}", f.display());
            }
            let mut solved = report.results.iter();
            for (i, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Ok(()) => {
                        let r = solved.next().expect("one result per parsed instance");
                        let _ = writeln!(out, "{}", mtsp::engine::render_result_line(i, r));
                    }
                    Err(msg) => {
                        let _ = writeln!(out, "job {i}: error: {msg}");
                    }
                }
            }
            // Wall-clock metrics go to stderr so stdout stays byte-identical
            // across --jobs values (the determinism contract of `batch`).
            eprint!("{}", report.metrics.render());
        }
        Command::BenchThroughput {
            n_instances,
            jobs,
            distinct,
            n,
            m,
            seed,
        } => {
            let distinct = distinct.min(n_instances);
            let suite: Vec<Instance> = (0..n_instances)
                .map(|i| {
                    random_instance(
                        DagFamily::Layered,
                        CurveFamily::Mixed,
                        n,
                        m,
                        seed + (i % distinct) as u64,
                    )
                })
                .collect();
            let sequential = Engine::new(EngineConfig {
                workers: 1,
                cache: false,
                ..EngineConfig::default()
            });
            let r_seq = sequential.solve_batch(&suite);
            let pooled = Engine::new(EngineConfig {
                workers: jobs,
                cache: true,
                ..EngineConfig::default()
            });
            // Clamp like the pool does, so the header never overstates the
            // parallelism behind the quoted speedups.
            let workers = pooled.config().resolved_workers().min(n_instances);
            let r_cold = pooled.solve_batch(&suite);
            let r_warm = pooled.solve_batch(&suite);
            let identical = r_seq.render_results() == r_cold.render_results()
                && r_cold.render_results() == r_warm.render_results();
            let speed =
                |r: &BatchReport| r.metrics.throughput / r_seq.metrics.throughput.max(1e-12);
            let _ = writeln!(
                out,
                "bench-throughput: {n_instances} jobs ({distinct} distinct), n={n}, m={m}, workers={workers}"
            );
            let _ = writeln!(
                out,
                "  sequential, no cache  {:>10.1} jobs/s  (wall {:.3} s)",
                r_seq.metrics.throughput,
                r_seq.metrics.wall.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "  pool, cold cache      {:>10.1} jobs/s  (wall {:.3} s)  speedup {:.2}x",
                r_cold.metrics.throughput,
                r_cold.metrics.wall.as_secs_f64(),
                speed(&r_cold)
            );
            let _ = writeln!(
                out,
                "  pool, warm cache      {:>10.1} jobs/s  (wall {:.3} s)  speedup {:.2}x",
                r_warm.metrics.throughput,
                r_warm.metrics.wall.as_secs_f64(),
                speed(&r_warm)
            );
            let _ = writeln!(
                out,
                "  warm hit rate {:.1}%  |  outputs byte-identical across modes: {identical}",
                100.0 * r_warm.metrics.cache.hit_rate()
            );
        }
        Command::Bounds { m } => {
            let p = our_params(m);
            let _ = writeln!(out, "machine size m = {m}:");
            let _ = writeln!(out, "  paper parameters: rho = {}, mu = {}", p.rho, p.mu);
            let _ = writeln!(
                out,
                "  min-max bound r(m)       = {:.6}",
                mtsp::analysis::minmax::objective(m, p.mu, p.rho)
            );
            let _ = writeln!(
                out,
                "  Theorem 4.1 bound        = {:.6}",
                theorem_4_1_bound(m)
            );
            let g = grid::grid_search(m, 10_000, 2);
            let _ = writeln!(
                out,
                "  grid optimum (Table 4)   = {:.6} at rho = {:.4}, mu = {}",
                g.r, g.rho, g.mu
            );
            let (ltw_mu, ltw_r) = ltw::table3_row(m);
            let _ = writeln!(
                out,
                "  LTW [18] bound (Table 3) = {ltw_r:.6} at mu = {ltw_mu}"
            );
        }
        Command::Tables { which } => {
            if which == "2" || which == "all" {
                out.push_str("Table 2 (m mu rho r):\n");
                for m in 2..=33 {
                    let (m, mu, rho, r) = ratio::table2_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {rho:>6.3} {r:>8.4}");
                }
            }
            if which == "3" || which == "all" {
                out.push_str("Table 3 (m mu r):\n");
                for m in 2..=33 {
                    let (mu, r) = ltw::table3_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {r:>8.4}");
                }
            }
            if which == "4" || which == "all" {
                out.push_str("Table 4 (m mu rho r):\n");
                for row in grid::table4(2..=33, 10_000, 2) {
                    let _ = writeln!(
                        out,
                        "{:>3} {:>3} {:>6.3} {:>8.4}",
                        row.m, row.mu, row.rho, row.r
                    );
                }
            }
        }
        Command::Solve {
            file,
            rho,
            mu,
            priority,
            improve,
            gantt,
            phase1,
        } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let default = our_params(ins.m());
            let params = Params {
                rho: rho.unwrap_or(default.rho),
                mu: mu.unwrap_or(default.mu),
            };
            let cfg = JzConfig {
                params: Some(params),
                priority,
                phase1,
                ..JzConfig::default()
            };
            let rep = schedule_jz_with(&ins, &cfg).map_err(|e| e.to_string())?;
            rep.schedule.verify(&ins).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let _ = writeln!(out, "params:   rho = {}, mu = {}", params.rho, params.mu);
            let _ = writeln!(out, "LP bound C*      = {:.6}", rep.lp.cstar);
            let _ = writeln!(out, "makespan         = {:.6}", rep.schedule.makespan());
            let _ = writeln!(out, "observed ratio   = {:.4}", rep.ratio_vs_cstar());
            let _ = writeln!(out, "guarantee r(m)   = {:.4}", rep.guarantee);
            let (final_schedule, final_alloc) = if improve {
                let res = improve_allotment(&ins, &rep.alloc, &ImproveOptions::default());
                let _ = writeln!(
                    out,
                    "local search:    {} moves, makespan {:.6}",
                    res.moves,
                    res.schedule.makespan()
                );
                (res.schedule, res.alloc)
            } else {
                (rep.schedule, rep.alloc)
            };
            let _ = writeln!(out, "allotments:      {final_alloc:?}");
            out.push_str(&final_schedule.render());
            if gantt {
                let sim = execute(&ins, &final_schedule).map_err(|e| e.to_string())?;
                out.push_str(&mtsp::sim::gantt(&final_schedule, &sim, 72));
            }
        }
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_solve_with_flags() {
        let cmd = parse_args(&argv(
            "solve inst.txt --rho 0.3 --mu 4 --priority bl --improve --gantt --phase1 bisection",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                file: "inst.txt".into(),
                rho: Some(0.3),
                mu: Some(4),
                priority: Priority::BottomLevel,
                improve: true,
                gantt: true,
                phase1: Phase1::Bisection,
            }
        );
        assert!(parse_args(&argv("solve a.txt --phase1 nope")).is_err());
    }

    #[test]
    fn parses_generate_defaults() {
        let cmd = parse_args(&argv("generate --dag chain --curve amdahl")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dag: DagFamily::Chain,
                curve: CurveFamily::Amdahl,
                n: 20,
                m: 8,
                seed: 0,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("solve")).is_err());
        assert!(parse_args(&argv("generate --dag nope --curve amdahl")).is_err());
        assert!(parse_args(&argv("tables 7")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("solve a.txt --rho")).is_err());
        assert!(parse_args(&argv("generate --dag chain --curve mixed extra")).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        let text = run(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn generate_then_solve_roundtrip() {
        let gen = run(Command::Generate {
            dag: DagFamily::Layered,
            curve: CurveFamily::PowerLaw,
            n: 10,
            m: 4,
            seed: 1,
        })
        .unwrap();
        let dir = std::env::temp_dir().join("mtsp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.txt");
        std::fs::write(&path, &gen).unwrap();

        let text = run(Command::Check {
            file: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(text.contains("admissible"));

        let text = run(Command::Solve {
            file: path.to_string_lossy().into_owned(),
            rho: None,
            mu: None,
            priority: Priority::TaskId,
            improve: true,
            gantt: true,
            phase1: Phase1::Lp,
        })
        .unwrap();
        assert!(text.contains("makespan"));
        assert!(text.contains("guarantee"));
        assert!(text.contains("p0"), "gantt rows expected");
    }

    #[test]
    fn parses_batch_and_bench_throughput() {
        let cmd = parse_args(&argv(
            "batch dir-a inst.txt --jobs 8 --cache --fresh-contexts",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                paths: vec!["dir-a".into(), "inst.txt".into()],
                jobs: 8,
                cache: true,
                fresh_contexts: true,
            }
        );
        let cmd = parse_args(&argv("bench-throughput --n-instances 50 --distinct 5")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchThroughput {
                n_instances: 50,
                jobs: 0,
                distinct: 5,
                n: 20,
                m: 8,
                seed: 0,
            }
        );
        assert!(parse_args(&argv("batch --jobs 2")).is_err());
        assert!(parse_args(&argv("bench-throughput")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 0")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 2 --m 0")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 2 --n 0")).is_err());
    }

    #[test]
    fn batch_output_is_deterministic_across_jobs() {
        // Process-id suffix: parallel test processes must not share the dir.
        let dir = std::env::temp_dir().join(format!("mtsp-cli-batch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..6u64 {
            let gen = run(Command::Generate {
                dag: DagFamily::Layered,
                curve: CurveFamily::PowerLaw,
                n: 8,
                m: 4,
                seed: seed % 3, // duplicates exercise the cache
            })
            .unwrap();
            std::fs::write(dir.join(format!("inst{seed}.txt")), gen).unwrap();
        }
        // A stray non-instance file must become a per-job error line, not
        // kill the batch ("zz" sorts after the instance files -> job 6).
        std::fs::write(dir.join("zz-readme.txt"), "not an instance\n").unwrap();
        let batch = |jobs: usize, cache: bool, fresh_contexts: bool| {
            run(Command::Batch {
                paths: vec![dir.to_string_lossy().into_owned()],
                jobs,
                cache,
                fresh_contexts,
            })
            .unwrap()
        };
        let sequential = batch(1, false, false);
        assert_eq!(
            sequential.lines().count(),
            1 + 7 + 7,
            "header + files + jobs"
        );
        assert!(sequential.contains("job 5:"));
        assert!(
            sequential.contains("job 6: error:"),
            "unparsable file reports per-job: {sequential}"
        );
        assert_eq!(
            sequential,
            batch(8, false, false),
            "worker count must not matter"
        );
        assert_eq!(sequential, batch(8, true, false), "cache must not matter");
        assert_eq!(
            sequential,
            batch(4, true, true),
            "context reuse must not matter"
        );
        let missing = run(Command::Batch {
            paths: vec!["/nonexistent/nope".into()],
            jobs: 1,
            cache: false,
            fresh_contexts: false,
        });
        assert!(missing.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_throughput_runs_and_reports_speedup() {
        let text = run(Command::BenchThroughput {
            n_instances: 12,
            jobs: 4,
            distinct: 3,
            n: 8,
            m: 4,
            seed: 1,
        })
        .unwrap();
        assert!(text.contains("sequential, no cache"));
        assert!(text.contains("pool, warm cache"));
        assert!(text.contains("outputs byte-identical across modes: true"));
    }

    #[test]
    fn bounds_and_tables_commands_run() {
        let text = run(Command::Bounds { m: 8 }).unwrap();
        assert!(text.contains("Theorem 4.1"));
        assert!(text.contains("2.8659") || text.contains("2.866"));
        let text = run(Command::Tables { which: "2".into() }).unwrap();
        assert!(text.lines().count() >= 33);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(Command::Check {
            file: "/nonexistent/nope.txt".into(),
        })
        .unwrap_err();
        assert!(err.contains("nope.txt"));
    }
}
