//! `mtsp` — command-line interface to the malleable-task scheduler.
//!
//! ```text
//! mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
//! mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
//! mtsp check <file>
//! mtsp profile <file> [--phase1 lp|bisection] [--trace FILE]
//! mtsp batch <dir|file>... [--jobs N] [--cache] [--fresh-contexts] [--trace FILE]
//! mtsp bench-throughput --n-instances K [--jobs N] [--distinct D] [--n N] [--m M]
//! mtsp corpus run <spec> [--jobs N] [--fresh-contexts] [--no-cache] [--window W] [--out FILE]
//! mtsp audit [--smoke] [--jobs N] [--out FILE] [--baseline FILE] [--write-baseline] ...
//! mtsp replay (<spec>|--smoke) [--jobs N] [--out FILE] [--noise MODEL] [--seed S]
//!            [--trace FILE]
//! mtsp serve [--stdio|--socket PATH|--tcp ADDR] [--shards N] [--queue-cap N]
//!           [--max-sessions N] [--max-tasks N] [--max-replans-per-sec R]
//! mtsp client (--socket PATH|--tcp ADDR) [script|-] [--snapshot-out FILE]
//! mtsp bounds <m>
//! mtsp tables [2|3|4|all]
//! mtsp --version
//! ```
//!
//! Instances use the plain-text format of `mtsp::model::textio` (see
//! `mtsp generate` to produce one); corpus specs use its `mtsp-corpus v1`
//! sibling format; replay takes either an `mtsp-replay v1` scenario grid
//! or a concrete `mtsp-scenario v1` event file.

use mtsp::analysis::{grid, ltw, ratio};
use mtsp::core::improve::{improve_allotment, ImproveOptions};
use mtsp::core::two_phase::{schedule_jz_with, JzConfig, Phase1};
use mtsp::model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp::model::textio;
use mtsp::prelude::*;
use std::fmt::Write as _;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Solve {
        file: String,
        rho: Option<f64>,
        mu: Option<usize>,
        priority: Priority,
        improve: bool,
        gantt: bool,
        phase1: Phase1,
    },
    Generate {
        dag: DagFamily,
        curve: CurveFamily,
        n: usize,
        m: usize,
        seed: u64,
    },
    Check {
        file: String,
    },
    Profile {
        file: String,
        phase1: Phase1,
        /// Chrome trace-event JSON destination (`--trace FILE`).
        trace: Option<String>,
    },
    Batch {
        paths: Vec<String>,
        jobs: usize,
        cache: bool,
        fresh_contexts: bool,
        trace: Option<String>,
    },
    BenchThroughput {
        n_instances: usize,
        jobs: usize,
        distinct: usize,
        n: usize,
        m: usize,
        seed: u64,
    },
    CorpusRun {
        spec: String,
        jobs: usize,
        fresh_contexts: bool,
        no_cache: bool,
        window: usize,
        out: Option<String>,
    },
    Audit {
        smoke: bool,
        jobs: usize,
        fresh_contexts: bool,
        out: String,
        baseline: Option<String>,
        write_baseline: bool,
        perf_floor: f64,
        tol: f64,
        no_gate: bool,
    },
    Replay {
        /// Grid or scenario file; `None` = the built-in smoke grid
        /// (`--smoke`).
        spec: Option<String>,
        jobs: usize,
        out: Option<String>,
        noise: mtsp::sim::NoiseModel,
        seed: u64,
        trace: Option<String>,
    },
    Serve {
        transport: ServeTransport,
        shards: usize,
        queue_cap: usize,
        max_sessions: usize,
        max_tasks: usize,
        max_replans_per_sec: f64,
        wal_dir: Option<String>,
        fsync: mtsp::serve::FsyncPolicy,
    },
    Client {
        target: ClientTarget,
        /// Script file path; `None` = read the script from stdin.
        script: Option<String>,
        snapshot_out: Option<String>,
    },
    Bounds {
        m: usize,
    },
    Tables {
        which: String,
    },
    Lint {
        /// `--format json` switches from compiler-style text lines.
        json: bool,
        /// `--out FILE` writes the report there instead of stdout.
        out: Option<String>,
        /// `--root DIR` pins the workspace root (default: search upward
        /// from the current directory).
        root: Option<String>,
    },
    Version,
    Help,
}

/// Where `mtsp serve` listens.
#[derive(Debug, Clone, PartialEq)]
enum ServeTransport {
    /// One connection over stdin/stdout (the default).
    Stdio,
    /// Unix domain socket at the given path.
    Unix(String),
    /// TCP listener at the given `host:port` address.
    Tcp(String),
}

/// Where `mtsp client` connects.
#[derive(Debug, Clone, PartialEq)]
enum ClientTarget {
    /// Unix domain socket at the given path.
    Unix(String),
    /// TCP `host:port` address.
    Tcp(String),
}

const USAGE: &str = "\
mtsp — scheduling malleable tasks with precedence constraints (Jansen-Zhang)

USAGE:
  mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
             [--phase1 lp|bisection]
  mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
  mtsp check <file>
  mtsp profile <file> [--phase1 lp|bisection] [--trace FILE]
  mtsp batch <dir|file>... [--jobs N] [--cache] [--fresh-contexts] [--trace FILE]
  mtsp bench-throughput --n-instances K [--jobs N] [--distinct D] [--n N] [--m M]
                        [--seed S]
  mtsp corpus run <spec> [--jobs N] [--fresh-contexts] [--no-cache] [--window W]
                 [--out FILE]
  mtsp audit [--smoke] [--jobs N] [--fresh-contexts] [--out FILE]
             [--baseline FILE] [--write-baseline] [--perf-floor F] [--tol T]
             [--no-gate]
  mtsp replay (<spec>|--smoke) [--jobs N] [--out FILE] [--noise MODEL]
             [--seed S] [--trace FILE]
  mtsp serve [--stdio|--socket PATH|--tcp ADDR] [--shards N] [--queue-cap N]
            [--max-sessions N] [--max-tasks N] [--max-replans-per-sec R]
            [--wal-dir DIR] [--fsync always|interval|never]
  mtsp client (--socket PATH|--tcp ADDR) [script|-] [--snapshot-out FILE]
  mtsp bounds <m>
  mtsp tables [2|3|4|all]
  mtsp lint [--format json] [--out FILE] [--root DIR]
  mtsp --version

profile solves one instance with telemetry on: stdout carries the
deterministic counter table (simplex iterations, FTRAN/BTRAN passes,
bisection probes, rounding passes, list steps — identical bytes on every
run), stderr carries the per-label span profile (wall clock), and
--trace additionally writes the raw spans as Chrome trace-event JSON
(load in chrome://tracing or Perfetto).

batch solves every instance file (directories expand to their non-hidden
files, sorted by name) on a deterministic worker pool: results print in
submission order and are byte-identical for any --jobs value; --cache
memoizes repeated instances; --fresh-contexts rebuilds the per-worker LP
solve context for every job instead of reusing it (same bytes out, only
slower — a determinism/debugging aid). Throughput metrics go to stderr;
--trace writes a Chrome trace of the run's spans.

corpus run streams the grid of an mtsp-corpus v1 spec file through the
engine pool under bounded memory (at most --window instances in flight)
and emits the machine-readable mtsp-harness-report v1 quality report
(JSON) on stdout or to --out; report bytes are identical for any --jobs.
audit runs the built-in 384-cell corpus (all 8 DAG x 6 curve families;
--smoke: the 16-cell CI grid), writes the report to --out (default
BENCH_harness.json), and gates it against --baseline (default
BENCH_baseline.json, or BENCH_baseline_smoke.json with --smoke):
quality regressions beyond --tol or measured throughput below the
baseline's committed floor fail the run. --write-baseline records the
current report (plus --perf-floor, default 0.5 jobs/s) as the new
baseline instead of gating. The audit also replays the built-in arrival
scenario grid through the online session and embeds the section under
\"scenarios\", and runs the daemon wire-protocol audit (a fixed
multi-tenant script at 1 and 4 shards, compared byte-for-byte) embedded
under \"serve\" (both gated like the rest). Full (non---smoke) audits
additionally run the large-n tier (independent instances up to n=2048
plus a large replay grid) embedded under \"large\" and held to the same
quality checks. Every audit probes the warm-vs-cold eta-file resolve
speedup and the cross-epoch LP reuse speedup as deterministic
pivot-work ratios (bitwise reproducible, so the gate never flakes on a
busy machine) and gates them against the floors committed in the
baseline (2x and 1.5x); the wall-clock ratios ride along on stderr.
Wall-clock metrics always go to stderr.

replay drives the online ScheduleSession: tasks arrive over time, each
arrival batch or machine-count change re-plans the not-yet-started
suffix (phase 1 with release times, warm LP context), and committed
tasks stay frozen. <spec> is either an mtsp-replay v1 grid (arrival
patterns x noise models, replayed on --jobs workers) or a concrete
mtsp-scenario v1 event file (single replay; --noise none|uniform:E|
slowdown:E and --seed select the execution noise). --smoke runs the
built-in 8-cell grid. Reports are byte-identical for any --jobs;
re-plan latency goes to stderr, --trace writes a Chrome trace of the
run's spans.

serve runs the multi-tenant scheduling daemon: sessions hash to
--shards worker shards (responses are byte-identical for any shard
count), every tenant shares one content-addressed solve cache, and each
connection speaks the line-oriented mtsp-wire v1 protocol (OPEN ARRIVE
EDGE MACHINES START FINISH REPLAN SNAPSHOT RESTORE CLOSE SOLVE STATS;
errors come back as 'ERR <line> <code> <msg>'). --stdio (default)
serves one connection on stdin/stdout; --socket / --tcp accept many.
Quota flags bound each tenant: --max-sessions per tenant,
--max-tasks per session, --max-replans-per-sec enforced by a
deterministic token bucket over the session's logical clock (0 = off).
Shard queues hold at most --queue-cap requests; full queues block the
sender (backpressure, never unbounded buffering). SNAPSHOT serializes a
session as an mtsp-session v1 event log; RESTORE replays it
bit-exactly, including across daemon restarts.

client connects to a serve daemon, streams a request script (a file,
or '-'/nothing for stdin), prints the reply transcript on stdout, and
with --snapshot-out writes the body of the last OK SNAPSHOT reply to a
file (ready to feed back through RESTORE).

lint runs the workspace's determinism & panic-safety static analysis
(rules R1-R5, see docs/ANALYSIS.md): no HashMap/HashSet in production
sources, no wall-clock reads outside the metrics allowlist, no
unwrap/expect/panic! in the serving path, floats serialized via the
{:?} contract, no narrowing casts in the wire/text parsers. The report
(compiler-style text, or mtsp-lint v1 JSON with --format json) is
byte-deterministic; suppressions are per-site
'// lint:allow(<rule>): <justification>' comments and an unjustified
or stale suppression is itself a diagnostic (R0). Exits 0 when clean,
1 when any diagnostic fires.

Wall-clock output always goes to stderr as '# metric key=value' lines
(one stable scrapeable format across batch, corpus, audit, and replay),
never to stdout or the JSON reports.

Exit status: 0 on success, 1 on runtime failure (bad instance file,
solver error, gate regression, I/O), 2 on a usage error (unknown
command or malformed flags).

DAG families:     independent chain layered series-parallel fork-join cholesky
                  wavefront random-tree
curve families:   power-law amdahl random-concave logarithmic saturating mixed
arrival patterns: batch periodic poisson bursty
noise models:     none uniform:EPS slowdown:EPS
";

fn parse_dag(s: &str) -> Result<DagFamily, String> {
    DagFamily::parse_name(s).ok_or_else(|| format!("unknown dag family '{s}'"))
}

fn parse_curve(s: &str) -> Result<CurveFamily, String> {
    CurveFamily::parse_name(s).ok_or_else(|| format!("unknown curve family '{s}'"))
}

fn parse_priority(s: &str) -> Result<Priority, String> {
    Ok(match s {
        "id" => Priority::TaskId,
        "bl" => Priority::BottomLevel,
        "wf" => Priority::WidestFirst,
        other => return Err(format!("unknown priority '{other}' (id|bl|wf)")),
    })
}

/// Parses `argv[1..]` into a [`Command`].
fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<&str> = it.collect();
    let take_value = |rest: &mut Vec<&str>, flag: &str| -> Result<Option<String>, String> {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            if pos + 1 >= rest.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = rest[pos + 1].to_string();
            rest.drain(pos..=pos + 1);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    };
    let take_flag = |rest: &mut Vec<&str>, flag: &str| -> bool {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            rest.remove(pos);
            true
        } else {
            false
        }
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "version" | "--version" | "-V" => {
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            Ok(Command::Version)
        }
        "solve" => {
            let rho = take_value(&mut rest, "--rho")?
                .map(|v| v.parse::<f64>().map_err(|e| format!("bad --rho: {e}")))
                .transpose()?;
            let mu = take_value(&mut rest, "--mu")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --mu: {e}")))
                .transpose()?;
            let priority = take_value(&mut rest, "--priority")?
                .map(|v| parse_priority(&v))
                .transpose()?
                .unwrap_or(Priority::TaskId);
            let improve = take_flag(&mut rest, "--improve");
            let gantt = take_flag(&mut rest, "--gantt");
            let phase1 = match take_value(&mut rest, "--phase1")?.as_deref() {
                None | Some("lp") => Phase1::Lp,
                Some("bisection") => Phase1::Bisection,
                Some(other) => return Err(format!("unknown phase1 '{other}' (lp|bisection)")),
            };
            let [file] = rest.as_slice() else {
                return Err("solve needs exactly one instance file".into());
            };
            Ok(Command::Solve {
                file: file.to_string(),
                rho,
                mu,
                priority,
                improve,
                gantt,
                phase1,
            })
        }
        "generate" => {
            let dag = parse_dag(&take_value(&mut rest, "--dag")?.ok_or("generate needs --dag")?)?;
            let curve =
                parse_curve(&take_value(&mut rest, "--curve")?.ok_or("generate needs --curve")?)?;
            let n = take_value(&mut rest, "--n")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --n: {e}")))
                .transpose()?
                .unwrap_or(20);
            let m = take_value(&mut rest, "--m")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --m: {e}")))
                .transpose()?
                .unwrap_or(8);
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            Ok(Command::Generate {
                dag,
                curve,
                n,
                m,
                seed,
            })
        }
        "check" => {
            let [file] = rest.as_slice() else {
                return Err("check needs exactly one instance file".into());
            };
            Ok(Command::Check {
                file: file.to_string(),
            })
        }
        "profile" => {
            let phase1 = match take_value(&mut rest, "--phase1")?.as_deref() {
                None | Some("lp") => Phase1::Lp,
                Some("bisection") => Phase1::Bisection,
                Some(other) => return Err(format!("unknown phase1 '{other}' (lp|bisection)")),
            };
            let trace = take_value(&mut rest, "--trace")?;
            let [file] = rest.as_slice() else {
                return Err("profile needs exactly one instance file".into());
            };
            Ok(Command::Profile {
                file: file.to_string(),
                phase1,
                trace,
            })
        }
        "batch" => {
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let cache = take_flag(&mut rest, "--cache");
            let fresh_contexts = take_flag(&mut rest, "--fresh-contexts");
            let trace = take_value(&mut rest, "--trace")?;
            if rest.is_empty() {
                return Err("batch needs at least one file or directory".into());
            }
            Ok(Command::Batch {
                paths: rest.iter().map(|s| s.to_string()).collect(),
                jobs,
                cache,
                fresh_contexts,
                trace,
            })
        }
        "bench-throughput" => {
            let n_instances = take_value(&mut rest, "--n-instances")?
                .ok_or("bench-throughput needs --n-instances")?
                .parse::<usize>()
                .map_err(|e| format!("bad --n-instances: {e}"))?;
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let distinct = take_value(&mut rest, "--distinct")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --distinct: {e}"))
                })
                .transpose()?
                .unwrap_or(8);
            let n = take_value(&mut rest, "--n")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --n: {e}")))
                .transpose()?
                .unwrap_or(20);
            let m = take_value(&mut rest, "--m")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --m: {e}")))
                .transpose()?
                .unwrap_or(8);
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            if n_instances == 0 || distinct == 0 || n == 0 || m == 0 {
                return Err("--n-instances, --distinct, --n and --m must be positive".into());
            }
            Ok(Command::BenchThroughput {
                n_instances,
                jobs,
                distinct,
                n,
                m,
                seed,
            })
        }
        "corpus" => {
            // Subcommand layout mirrors the usage line: `corpus run <spec>`.
            if rest.first() != Some(&"run") {
                return Err("corpus needs the 'run' subcommand: corpus run <spec>".into());
            }
            rest.remove(0);
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let fresh_contexts = take_flag(&mut rest, "--fresh-contexts");
            let no_cache = take_flag(&mut rest, "--no-cache");
            let window = take_value(&mut rest, "--window")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --window: {e}")))
                .transpose()?
                .unwrap_or(0);
            let out = take_value(&mut rest, "--out")?;
            let [spec] = rest.as_slice() else {
                return Err("corpus run needs exactly one spec file".into());
            };
            Ok(Command::CorpusRun {
                spec: spec.to_string(),
                jobs,
                fresh_contexts,
                no_cache,
                window,
                out,
            })
        }
        "audit" => {
            let smoke = take_flag(&mut rest, "--smoke");
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let fresh_contexts = take_flag(&mut rest, "--fresh-contexts");
            let out =
                take_value(&mut rest, "--out")?.unwrap_or_else(|| "BENCH_harness.json".into());
            let baseline = take_value(&mut rest, "--baseline")?;
            let write_baseline = take_flag(&mut rest, "--write-baseline");
            let perf_floor = take_value(&mut rest, "--perf-floor")?
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|e| format!("bad --perf-floor: {e}"))
                })
                .transpose()?
                .unwrap_or(0.5);
            let tol = take_value(&mut rest, "--tol")?
                .map(|v| v.parse::<f64>().map_err(|e| format!("bad --tol: {e}")))
                .transpose()?
                .unwrap_or(mtsp::harness::DEFAULT_RATIO_TOL);
            let no_gate = take_flag(&mut rest, "--no-gate");
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            if !perf_floor.is_finite() || perf_floor < 0.0 || !tol.is_finite() || tol < 0.0 {
                return Err("--perf-floor and --tol must be non-negative".into());
            }
            Ok(Command::Audit {
                smoke,
                jobs,
                fresh_contexts,
                out,
                baseline,
                write_baseline,
                perf_floor,
                tol,
                no_gate,
            })
        }
        "replay" => {
            let smoke = take_flag(&mut rest, "--smoke");
            let jobs = take_value(&mut rest, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")))
                .transpose()?
                .unwrap_or(0);
            let out = take_value(&mut rest, "--out")?;
            let noise = match take_value(&mut rest, "--noise")? {
                None => mtsp::sim::NoiseModel::None,
                Some(s) => mtsp::sim::NoiseModel::parse_name(&s).ok_or(format!(
                    "bad --noise '{s}' (none | uniform:EPS with EPS in [0,1) | slowdown:EPS)"
                ))?,
            };
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            let trace = take_value(&mut rest, "--trace")?;
            let spec = match (rest.as_slice(), smoke) {
                ([], true) => None,
                ([spec], false) => Some(spec.to_string()),
                _ => return Err("replay needs exactly one spec file, or --smoke".into()),
            };
            Ok(Command::Replay {
                spec,
                jobs,
                out,
                noise,
                seed,
                trace,
            })
        }
        "serve" => {
            let stdio = take_flag(&mut rest, "--stdio");
            let socket = take_value(&mut rest, "--socket")?;
            let tcp = take_value(&mut rest, "--tcp")?;
            let transport = match (stdio, socket, tcp) {
                (_, None, None) => ServeTransport::Stdio,
                (false, Some(p), None) => ServeTransport::Unix(p),
                (false, None, Some(a)) => ServeTransport::Tcp(a),
                _ => return Err("serve takes at most one of --stdio, --socket, --tcp".into()),
            };
            let shards = take_value(&mut rest, "--shards")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --shards: {e}")))
                .transpose()?
                .unwrap_or(4);
            let queue_cap = take_value(&mut rest, "--queue-cap")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --queue-cap: {e}"))
                })
                .transpose()?
                .unwrap_or(128);
            let defaults = mtsp::serve::Quotas::default();
            let max_sessions = take_value(&mut rest, "--max-sessions")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --max-sessions: {e}"))
                })
                .transpose()?
                .unwrap_or(defaults.max_sessions);
            let max_tasks = take_value(&mut rest, "--max-tasks")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --max-tasks: {e}"))
                })
                .transpose()?
                .unwrap_or(defaults.max_tasks);
            let max_replans_per_sec = take_value(&mut rest, "--max-replans-per-sec")?
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|e| format!("bad --max-replans-per-sec: {e}"))
                })
                .transpose()?
                .unwrap_or(defaults.max_replans_per_sec);
            let wal_dir = take_value(&mut rest, "--wal-dir")?;
            let fsync_arg = take_value(&mut rest, "--fsync")?;
            let fsync = match &fsync_arg {
                None => mtsp::serve::FsyncPolicy::Always,
                Some(v) => mtsp::serve::FsyncPolicy::parse(v)
                    .ok_or_else(|| format!("bad --fsync: {v} (want always, interval, or never)"))?,
            };
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            if shards == 0 || queue_cap == 0 {
                return Err("--shards and --queue-cap must be positive".into());
            }
            if !max_replans_per_sec.is_finite() || max_replans_per_sec < 0.0 {
                return Err("--max-replans-per-sec must be finite and non-negative".into());
            }
            if fsync_arg.is_some() && wal_dir.is_none() {
                return Err("--fsync requires --wal-dir".into());
            }
            Ok(Command::Serve {
                transport,
                shards,
                queue_cap,
                max_sessions,
                max_tasks,
                max_replans_per_sec,
                wal_dir,
                fsync,
            })
        }
        "client" => {
            let socket = take_value(&mut rest, "--socket")?;
            let tcp = take_value(&mut rest, "--tcp")?;
            let target = match (socket, tcp) {
                (Some(p), None) => ClientTarget::Unix(p),
                (None, Some(a)) => ClientTarget::Tcp(a),
                _ => return Err("client needs exactly one of --socket PATH or --tcp ADDR".into()),
            };
            let snapshot_out = take_value(&mut rest, "--snapshot-out")?;
            let script = match rest.as_slice() {
                [] | ["-"] => None,
                [path] => Some(path.to_string()),
                _ => return Err("client takes at most one script file (or '-' for stdin)".into()),
            };
            Ok(Command::Client {
                target,
                script,
                snapshot_out,
            })
        }
        "bounds" => {
            let [m] = rest.as_slice() else {
                return Err("bounds needs a machine size".into());
            };
            Ok(Command::Bounds {
                m: m.parse().map_err(|e| format!("bad machine size: {e}"))?,
            })
        }
        "tables" => {
            let which = rest.first().copied().unwrap_or("all").to_string();
            if !["2", "3", "4", "all"].contains(&which.as_str()) {
                return Err(format!("unknown table '{which}' (2|3|4|all)"));
            }
            Ok(Command::Tables { which })
        }
        "lint" => {
            let json = match take_value(&mut rest, "--format")?.as_deref() {
                None | Some("text") => false,
                Some("json") => true,
                Some(other) => return Err(format!("unknown lint format '{other}' (text|json)")),
            };
            let out = take_value(&mut rest, "--out")?;
            let root = take_value(&mut rest, "--root")?;
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            Ok(Command::Lint { json, out, root })
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Expands the `batch` path arguments: files pass through, directories
/// expand to their non-hidden regular files sorted by name.
fn expand_batch_paths(paths: &[String]) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = std::path::Path::new(p);
        if path.is_dir() {
            let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("{p}: {e}"))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|q| {
                    q.is_file()
                        && !q
                            .file_name()
                            .is_some_and(|n| n.to_string_lossy().starts_with('.'))
                })
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("{p}: directory contains no instance files"));
            }
            files.extend(entries);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("{p}: no such file or directory"));
        }
    }
    Ok(files)
}

/// Emits wall-clock metrics to stderr as `# metric <section>.<key>=<value>`
/// lines — the single format every verb uses for non-deterministic
/// material, so nothing timing-dependent ever reaches stdout or the JSON
/// reports.
fn emit_metrics(section: &str, pairs: &[(&str, String)]) {
    for (k, v) in pairs {
        eprintln!("# metric {section}.{k}={v}");
    }
}

/// Batch-pool wall-clock metrics in `# metric` form.
fn emit_batch_metrics(section: &str, m: &mtsp::engine::BatchMetrics) {
    let ms = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
    emit_metrics(
        section,
        &[
            ("jobs", m.jobs.to_string()),
            ("failures", m.failures.to_string()),
            ("workers", m.workers.to_string()),
            ("wall_s", format!("{:.3}", m.wall.as_secs_f64())),
            ("throughput_jobs_per_s", format!("{:.1}", m.throughput)),
            ("mean_latency_ms", ms(m.mean_latency)),
            ("p50_latency_ms", ms(m.p50_latency)),
            ("p90_latency_ms", ms(m.p90_latency)),
            ("p99_latency_ms", ms(m.p99_latency)),
            ("max_latency_ms", ms(m.max_latency)),
            ("cache_hits", m.cache.hits.to_string()),
            ("cache_misses", m.cache.misses.to_string()),
            ("cache_entries", m.cache.entries.to_string()),
        ],
    );
}

/// Scenario-replay wall-clock metrics in `# metric` form.
fn emit_scenario_metrics(section: &str, m: &mtsp::harness::ScenarioMetrics) {
    emit_metrics(
        section,
        &[
            ("cells", m.cells.to_string()),
            ("epochs", m.epochs.to_string()),
            ("wall_s", format!("{:.3}", m.wall.as_secs_f64())),
            (
                "replan_wall_ms",
                format!("{:.3}", m.replan_wall.as_secs_f64() * 1e3),
            ),
        ],
    );
}

/// Stops span collection and writes the collected events as Chrome
/// trace-event JSON. Returns the confirmation line for stdout.
fn write_trace(path: &str) -> Result<String, String> {
    mtsp::obs::span::disable();
    let events = mtsp::obs::span::drain();
    let json = mtsp::bench::trace::chrome_trace(&events).to_pretty();
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!(
        "trace written to {path} ({} span(s))\n",
        events.len()
    ))
}

/// Runs the `lint` verb: lints the workspace, renders the report
/// (honoring `--out`), and returns the stdout text plus the process
/// exit code — 0 clean, 1 when any diagnostic fired. The report bytes
/// are deterministic; only the exit code carries the verdict.
fn run_lint(
    json: bool,
    dest: Option<String>,
    root: Option<String>,
) -> Result<(String, i32), String> {
    let root_dir = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
            mtsp::lint::walk::find_workspace_root(&cwd).ok_or_else(|| {
                "no workspace root (a Cargo.toml with [workspace]) at or above the \
                 current directory; pass --root DIR"
                    .to_string()
            })?
        }
    };
    let report = mtsp::lint::lint_workspace(&root_dir)
        .map_err(|e| format!("lint walk under {}: {e}", root_dir.display()))?;
    let rendered = if json {
        report.to_json()
    } else {
        report.to_text()
    };
    let stdout_text = match dest {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            // The summary still lands on stdout so a CI log shows the
            // verdict without opening the artifact.
            format!(
                "lint report written to {path}: {} diagnostic(s), {} suppressed, {} files\n",
                report.diagnostics.len(),
                report.suppressed,
                report.files_scanned
            )
        }
        None => rendered,
    };
    Ok((stdout_text, report.exit_code()))
}

/// Executes a command, returning the text to print.
fn run(cmd: Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Generate {
            dag,
            curve,
            n,
            m,
            seed,
        } => {
            let ins = random_instance(dag, curve, n, m, seed);
            out.push_str(&textio::write_instance(&ins));
        }
        Command::Check { file } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let reports = ins.verify_assumptions();
            let bad: Vec<usize> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.admissible())
                .map(|(j, _)| j)
                .collect();
            if bad.is_empty() {
                let _ = writeln!(out, "all tasks satisfy Assumptions 1 and 2: admissible");
            } else {
                let _ = writeln!(out, "inadmissible tasks (A1/A2 violated): {bad:?}");
            }
            let _ = writeln!(
                out,
                "combinatorial lower bound: {:.6}",
                ins.combinatorial_lower_bound()
            );
            let _ = writeln!(
                out,
                "serial upper bound:        {:.6}",
                ins.serial_upper_bound()
            );
        }
        Command::Profile {
            file,
            phase1,
            trace,
        } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let cfg = JzConfig {
                phase1,
                ..JzConfig::default()
            };
            mtsp::obs::span::enable();
            let rep = schedule_jz_with(&ins, &cfg).map_err(|e| e.to_string())?;
            mtsp::obs::span::disable();
            let events = mtsp::obs::span::drain();
            // stdout: the deterministic story — instance, result, and the
            // counter table (identical bytes on every run).
            let _ = writeln!(
                out,
                "profile: n = {}, m = {}, phase1 = {}",
                ins.n(),
                ins.m(),
                match phase1 {
                    Phase1::Lp => "lp",
                    Phase1::Bisection => "bisection",
                }
            );
            let _ = writeln!(
                out,
                "makespan = {:.6}  (LP bound C* = {:.6})",
                rep.schedule.makespan(),
                rep.lp.cstar
            );
            out.push_str("counters:\n");
            for (c, v) in rep.counters.iter() {
                let _ = writeln!(out, "  {:<24} {v}", c.name());
            }
            // stderr: the wall-clock story — per-label span aggregates.
            for a in mtsp::obs::span::aggregate(&events) {
                eprintln!(
                    "# span {} count={} total_ms={:.3}",
                    a.label,
                    a.count,
                    a.total_ns as f64 / 1e6
                );
            }
            if let Some(f) = trace {
                let json = mtsp::bench::trace::chrome_trace(&events).to_pretty();
                std::fs::write(&f, json).map_err(|e| format!("{f}: {e}"))?;
                let _ = writeln!(out, "trace written to {f} ({} span(s))", events.len());
            }
        }
        Command::Batch {
            paths,
            jobs,
            cache,
            fresh_contexts,
            trace,
        } => {
            let files = expand_batch_paths(&paths)?;
            // Unreadable/unparsable files become per-job error lines (like
            // solver failures) instead of aborting the whole batch — a
            // directory may mix instance files with a stray README. Parsed
            // instances move into the job list; `outcomes` remembers which
            // file index solved vs failed to parse.
            let mut instances = Vec::with_capacity(files.len());
            let mut outcomes: Vec<Result<(), String>> = Vec::with_capacity(files.len());
            for f in &files {
                let parsed = std::fs::read_to_string(f)
                    .map_err(|e| format!("{}: {e}", f.display()))
                    .and_then(|text| {
                        textio::parse_instance(&text).map_err(|e| format!("{}: {e}", f.display()))
                    });
                match parsed {
                    Ok(ins) => {
                        instances.push(ins);
                        outcomes.push(Ok(()));
                    }
                    Err(msg) => outcomes.push(Err(msg)),
                }
            }
            let engine = Engine::new(EngineConfig {
                workers: jobs,
                cache,
                reuse_context: !fresh_contexts,
                ..EngineConfig::default()
            });
            if trace.is_some() {
                mtsp::obs::span::enable();
            }
            let report = engine.solve_batch(&instances);
            let _ = writeln!(out, "batch: {} instance(s)", files.len());
            for (i, f) in files.iter().enumerate() {
                let _ = writeln!(out, "  [{i}] {}", f.display());
            }
            let mut solved = report.results.iter();
            for (i, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Ok(()) => {
                        let r = solved.next().expect("one result per parsed instance");
                        let _ = writeln!(out, "{}", mtsp::engine::render_result_line(i, r));
                    }
                    Err(msg) => {
                        let _ = writeln!(out, "job {i}: error: {msg}");
                    }
                }
            }
            if let Some(f) = &trace {
                out.push_str(&write_trace(f)?);
            }
            // Wall-clock metrics go to stderr so stdout stays byte-identical
            // across --jobs values (the determinism contract of `batch`).
            emit_batch_metrics("batch", &report.metrics);
        }
        Command::BenchThroughput {
            n_instances,
            jobs,
            distinct,
            n,
            m,
            seed,
        } => {
            let distinct = distinct.min(n_instances);
            let suite: Vec<Instance> = (0..n_instances)
                .map(|i| {
                    random_instance(
                        DagFamily::Layered,
                        CurveFamily::Mixed,
                        n,
                        m,
                        seed + (i % distinct) as u64,
                    )
                })
                .collect();
            let sequential = Engine::new(EngineConfig {
                workers: 1,
                cache: false,
                ..EngineConfig::default()
            });
            let r_seq = sequential.solve_batch(&suite);
            let pooled = Engine::new(EngineConfig {
                workers: jobs,
                cache: true,
                ..EngineConfig::default()
            });
            // Clamp like the pool does, so the header never overstates the
            // parallelism behind the quoted speedups.
            let workers = pooled.config().resolved_workers().min(n_instances);
            let r_cold = pooled.solve_batch(&suite);
            let r_warm = pooled.solve_batch(&suite);
            let identical = r_seq.render_results() == r_cold.render_results()
                && r_cold.render_results() == r_warm.render_results();
            let speed =
                |r: &BatchReport| r.metrics.throughput / r_seq.metrics.throughput.max(1e-12);
            let _ = writeln!(
                out,
                "bench-throughput: {n_instances} jobs ({distinct} distinct), n={n}, m={m}, workers={workers}"
            );
            let _ = writeln!(
                out,
                "  sequential, no cache  {:>10.1} jobs/s  (wall {:.3} s)",
                r_seq.metrics.throughput,
                r_seq.metrics.wall.as_secs_f64()
            );
            let _ = writeln!(
                out,
                "  pool, cold cache      {:>10.1} jobs/s  (wall {:.3} s)  speedup {:.2}x",
                r_cold.metrics.throughput,
                r_cold.metrics.wall.as_secs_f64(),
                speed(&r_cold)
            );
            let _ = writeln!(
                out,
                "  pool, warm cache      {:>10.1} jobs/s  (wall {:.3} s)  speedup {:.2}x",
                r_warm.metrics.throughput,
                r_warm.metrics.wall.as_secs_f64(),
                speed(&r_warm)
            );
            let _ = writeln!(
                out,
                "  warm hit rate {:.1}%  |  outputs byte-identical across modes: {identical}",
                100.0 * r_warm.metrics.cache.hit_rate()
            );
        }
        Command::CorpusRun {
            spec,
            jobs,
            fresh_contexts,
            no_cache,
            window,
            out: out_file,
        } => {
            let text = std::fs::read_to_string(&spec).map_err(|e| format!("{spec}: {e}"))?;
            let corpus = Corpus::parse(&text).map_err(|e| format!("{spec}: {e}"))?;
            let outcome = run_corpus(
                &corpus,
                &RunConfig {
                    workers: jobs,
                    reuse_context: !fresh_contexts,
                    cache: !no_cache,
                    window,
                },
            );
            // Wall-clock metrics to stderr; the report (stdout or --out)
            // stays byte-identical across --jobs values.
            emit_batch_metrics("corpus", &outcome.metrics);
            let json = outcome.report.to_pretty();
            match out_file {
                Some(f) => {
                    std::fs::write(&f, json).map_err(|e| format!("{f}: {e}"))?;
                    let _ = writeln!(out, "report written to {f}");
                }
                None => out.push_str(&json),
            }
        }
        Command::Audit {
            smoke,
            jobs,
            fresh_contexts,
            out: out_file,
            baseline,
            write_baseline,
            perf_floor,
            tol,
            no_gate,
        } => {
            let corpus = if smoke {
                Corpus::builtin_smoke()
            } else {
                Corpus::builtin_audit()
            };
            let outcome = run_corpus(
                &corpus,
                &RunConfig {
                    workers: jobs,
                    reuse_context: !fresh_contexts,
                    ..RunConfig::default()
                },
            );
            emit_batch_metrics("audit.corpus", &outcome.metrics);
            // The scenario audit rides along: the built-in arrival grid
            // replayed through the online session, embedded under
            // "scenarios" and gated with the rest.
            let scen_grid = if smoke {
                mtsp::harness::ScenarioGrid::builtin_smoke()
            } else {
                mtsp::harness::ScenarioGrid::builtin_audit()
            };
            let scen = mtsp::harness::run_scenario_grid(&scen_grid, jobs);
            emit_scenario_metrics("audit.scenarios", &scen.metrics);
            // The daemon audit rides along too: the fixed multi-tenant
            // wire script replayed at 1 and 4 shards, compared
            // byte-for-byte and embedded under "serve".
            let serve = mtsp::harness::run_serve_audit();
            // And the crash-recovery audit: journal, abandon with a torn
            // tail, recover, byte-diff the snapshots — under "durability".
            let durability = mtsp::harness::run_durability_audit();
            let report = mtsp::harness::attach_scenarios(outcome.report, scen.section);
            let report = mtsp::harness::attach_section(report, "serve", serve.section);
            let mut report =
                mtsp::harness::attach_section(report, "durability", durability.section);
            // The large-n tier (n up to 2048) rides along on full audits
            // only — it exercises the eta-file resolve path on LPs far
            // past the audit grid, and its own report (with an embedded
            // large scenario grid) nests under "large".
            let mut large_throughput = None;
            if !smoke {
                let large_corpus = Corpus::builtin_large();
                let large_outcome = run_corpus(
                    &large_corpus,
                    &RunConfig {
                        workers: jobs,
                        reuse_context: !fresh_contexts,
                        ..RunConfig::default()
                    },
                );
                emit_batch_metrics("audit.large.corpus", &large_outcome.metrics);
                let large_scen = mtsp::harness::run_scenario_grid(
                    &mtsp::harness::ScenarioGrid::builtin_large(),
                    jobs,
                );
                emit_scenario_metrics("audit.large.scenarios", &large_scen.metrics);
                large_throughput = Some(large_outcome.metrics.throughput);
                let large_section =
                    mtsp::harness::attach_scenarios(large_outcome.report, large_scen.section);
                report = mtsp::harness::attach_section(report, "large", large_section);
            }
            // Speed probes of the two raw-speed pillars, gated against
            // the floors committed in the baseline. The gated value is
            // the deterministic pivot-work ratio (bitwise reproducible);
            // the wall ratio rides along on stderr. The report bytes
            // never carry either.
            let ft_probe = mtsp::harness::measure_ft_resolve_speedup(32, 8);
            let reuse_probe = mtsp::harness::measure_epoch_reuse_speedup(48, 8, 4);
            emit_metrics(
                "audit.perf",
                &[
                    (
                        "ft_resolve_speedup",
                        format!("{:.3}", ft_probe.work_speedup),
                    ),
                    (
                        "ft_resolve_wall_speedup",
                        format!("{:.3}", ft_probe.wall_speedup),
                    ),
                    (
                        "epoch_reuse_speedup",
                        format!("{:.3}", reuse_probe.work_speedup),
                    ),
                    (
                        "epoch_reuse_wall_speedup",
                        format!("{:.3}", reuse_probe.wall_speedup),
                    ),
                ],
            );
            std::fs::write(&out_file, report.to_pretty())
                .map_err(|e| format!("{out_file}: {e}"))?;
            let summary = report.get("summary").expect("report has summary");
            let get_int = |k: &str| summary.get(k).and_then(|v| v.as_i64()).unwrap_or(-1);
            let _ = writeln!(
                out,
                "audit: corpus {} ({} instances), report -> {out_file}",
                corpus.spec().name,
                get_int("instances"),
            );
            let ratio_max = summary
                .get("ratio_vs_cstar_max")
                .and_then(|v| v.as_f64())
                .map(|r| format!("{r:.6}"))
                .unwrap_or_else(|| "n/a".into());
            let _ = writeln!(
                out,
                "  ratio_vs_cstar max {ratio_max}  (guarantee ceiling {:.6})",
                summary
                    .get("guarantee_ceiling")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(f64::NAN),
            );
            let _ = writeln!(
                out,
                "  failures {}  violations {}  guarantee_breaches {}  within_guarantee {}",
                get_int("failures"),
                get_int("violations"),
                get_int("guarantee_breaches"),
                summary
                    .get("within_guarantee")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false),
            );
            let scen_summary = report
                .get("scenarios")
                .and_then(|s| s.get("summary"))
                .expect("report has scenarios.summary");
            let _ = writeln!(
                out,
                "  scenarios: {} cells  ratio_vs_batch max {}  violations {}  failures {}",
                scen_summary
                    .get("cells")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(-1),
                scen_summary
                    .get("ratio_vs_batch_max")
                    .and_then(|v| v.as_f64())
                    .map(|r| format!("{r:.6}"))
                    .unwrap_or_else(|| "n/a".into()),
                scen_summary
                    .get("violations")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(-1),
                scen_summary
                    .get("failures")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(-1),
            );
            let serve_sec = report.get("serve").expect("report has serve section");
            let serve_int = |k: &str| serve_sec.get(k).and_then(|v| v.as_i64()).unwrap_or(-1);
            let _ = writeln!(
                out,
                "  serve: {} requests  {} rejections  {} snapshots  shard_consistent {}",
                serve_int("requests"),
                serve_int("rejections"),
                serve_int("snapshots"),
                serve_sec
                    .get("shard_consistent")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false),
            );
            let dur_sec = report
                .get("durability")
                .expect("report has durability section");
            let dur_int = |k: &str| dur_sec.get(k).and_then(|v| v.as_i64()).unwrap_or(-1);
            let dur_bool = |k: &str| dur_sec.get(k).and_then(|v| v.as_bool()).unwrap_or(false);
            let _ = writeln!(
                out,
                "  durability: {} wal_appends  {} recoveries  recovered_match {}  \
                 shard_consistent {}",
                dur_int("wal_appends"),
                dur_int("recoveries"),
                dur_bool("recovered_match"),
                dur_bool("shard_consistent"),
            );
            if let Some(large_summary) = report.get("large").and_then(|l| l.get("summary")) {
                let _ = writeln!(
                    out,
                    "  large: {} instances  ratio_vs_cstar max {}  failures {}  violations {}",
                    large_summary
                        .get("instances")
                        .and_then(|v| v.as_i64())
                        .unwrap_or(-1),
                    large_summary
                        .get("ratio_vs_cstar_max")
                        .and_then(|v| v.as_f64())
                        .map(|r| format!("{r:.6}"))
                        .unwrap_or_else(|| "n/a".into()),
                    large_summary
                        .get("failures")
                        .and_then(|v| v.as_i64())
                        .unwrap_or(-1),
                    large_summary
                        .get("violations")
                        .and_then(|v| v.as_i64())
                        .unwrap_or(-1),
                );
            }
            let _ = writeln!(
                out,
                "  perf: ft_resolve_speedup {:.2}x  epoch_reuse_speedup {:.2}x  (pivot-work ratios)",
                ft_probe.work_speedup, reuse_probe.work_speedup,
            );
            let baseline_path = baseline.unwrap_or_else(|| {
                if smoke {
                    "BENCH_baseline_smoke.json".into()
                } else {
                    "BENCH_baseline.json".into()
                }
            });
            if write_baseline {
                use mtsp::bench::json::Value;
                use mtsp::harness::{
                    attach_section, EPOCH_REUSE_FLOOR, FT_RESOLVE_FLOOR, PERF_FLOOR_FT_KEY,
                    PERF_FLOOR_LARGE_KEY, PERF_FLOOR_REUSE_KEY,
                };
                let mut doc = make_baseline(&report, perf_floor);
                // The speedup floors are fixed committed contracts, not
                // measurements: warm eta-file resolves must stay >= 2x
                // cold, cross-epoch LP reuse >= 1.5x rebuild.
                doc = attach_section(doc, PERF_FLOOR_FT_KEY, Value::Float(FT_RESOLVE_FLOOR));
                doc = attach_section(doc, PERF_FLOOR_REUSE_KEY, Value::Float(EPOCH_REUSE_FLOOR));
                if report.get("large").is_some() {
                    // The large tier solves multi-thousand-task LPs; its
                    // floor is correspondingly conservative (jobs/s).
                    doc = attach_section(doc, PERF_FLOOR_LARGE_KEY, Value::Float(0.02));
                }
                std::fs::write(&baseline_path, doc.to_pretty())
                    .map_err(|e| format!("{baseline_path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "baseline written to {baseline_path} (perf floor {perf_floor} jobs/s, \
                     ft floor {FT_RESOLVE_FLOOR}x, reuse floor {EPOCH_REUSE_FLOOR}x)"
                );
            } else if no_gate {
                let _ = writeln!(out, "gate: skipped (--no-gate)");
            } else if !std::path::Path::new(&baseline_path).exists() {
                // A fresh checkout or ad-hoc corpus has no baseline yet —
                // report it and pass (the repo commits its baselines, so CI
                // always gates).
                let _ = writeln!(out, "gate: no baseline at {baseline_path}, skipped");
            } else {
                let text = std::fs::read_to_string(&baseline_path)
                    .map_err(|e| format!("{baseline_path}: {e}"))?;
                let base =
                    mtsp::bench::json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
                let problems = mtsp::harness::check_regression_perf(
                    &report,
                    &base,
                    &mtsp::harness::MeasuredPerf {
                        throughput: Some(outcome.metrics.throughput),
                        large_throughput,
                        ft_resolve_speedup: Some(ft_probe.work_speedup),
                        epoch_reuse_speedup: Some(reuse_probe.work_speedup),
                    },
                    tol,
                );
                if problems.is_empty() {
                    let _ = writeln!(out, "gate: ok vs {baseline_path}");
                } else {
                    let mut msg = format!(
                        "regression gate failed vs {baseline_path} ({} problem(s)):",
                        problems.len()
                    );
                    for p in &problems {
                        let _ = write!(msg, "\n  - {p}");
                    }
                    return Err(msg);
                }
            }
        }
        Command::Replay {
            spec,
            jobs,
            out: out_file,
            noise,
            seed,
            trace,
        } => {
            use mtsp::harness::{
                replay_scenario_report, run_scenario_grid, standalone_scenario_report, ScenarioGrid,
            };
            if trace.is_some() {
                mtsp::obs::span::enable();
            }
            // One verb, two inputs (header-sniffed): a grid of generated
            // scenarios, or one concrete event file. Re-plan latency goes
            // to stderr; the report (stdout or --out) stays byte-identical
            // across --jobs values.
            let json = match spec {
                None => {
                    let outcome = run_scenario_grid(&ScenarioGrid::builtin_smoke(), jobs);
                    emit_scenario_metrics("replay", &outcome.metrics);
                    standalone_scenario_report(&outcome.section).to_pretty()
                }
                Some(path) => {
                    let text =
                        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                    let first = text
                        .lines()
                        .map(str::trim)
                        .find(|l| !l.is_empty() && !l.starts_with('#'))
                        .unwrap_or("");
                    if first == mtsp::model::textio::SCENARIO_HEADER {
                        let scenario = mtsp::model::textio::parse_scenario(&text)
                            .map_err(|e| format!("{path}: {e}"))?;
                        let cfg = mtsp::sim::ReplayConfig {
                            noise,
                            seed,
                            ..mtsp::sim::ReplayConfig::default()
                        };
                        let (report, replan_wall) =
                            replay_scenario_report(&scenario, &cfg).map_err(|e| e.to_string())?;
                        emit_metrics(
                            "replay",
                            &[
                                (
                                    "epochs",
                                    report
                                        .get("epochs")
                                        .and_then(|e| e.as_array())
                                        .map_or(0, |e| e.len())
                                        .to_string(),
                                ),
                                (
                                    "replan_wall_ms",
                                    format!("{:.3}", replan_wall.as_secs_f64() * 1e3),
                                ),
                            ],
                        );
                        report.to_pretty()
                    } else {
                        let grid =
                            ScenarioGrid::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                        let outcome = run_scenario_grid(&grid, jobs);
                        emit_scenario_metrics("replay", &outcome.metrics);
                        standalone_scenario_report(&outcome.section).to_pretty()
                    }
                }
            };
            if let Some(f) = &trace {
                out.push_str(&write_trace(f)?);
            }
            match out_file {
                Some(f) => {
                    std::fs::write(&f, json).map_err(|e| format!("{f}: {e}"))?;
                    let _ = writeln!(out, "report written to {f}");
                }
                None => out.push_str(&json),
            }
        }
        Command::Version => {
            let _ = writeln!(out, "mtsp {}", env!("CARGO_PKG_VERSION"));
        }
        Command::Serve {
            transport,
            shards,
            queue_cap,
            max_sessions,
            max_tasks,
            max_replans_per_sec,
            wal_dir,
            fsync,
        } => {
            use mtsp::serve::{daemon, Quotas, Registry, ServeConfig};
            // Validate the journal root up front: a missing or unwritable
            // directory should fail the launch, not the shard threads.
            let wal_path = wal_dir.map(std::path::PathBuf::from);
            if let Some(dir) = &wal_path {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("serve --wal-dir {}: {e}", dir.display()))?;
            }
            let reg = Registry::new(ServeConfig {
                shards,
                queue_cap,
                quotas: Quotas {
                    max_sessions,
                    max_tasks,
                    max_replans_per_sec,
                },
                wal_dir: wal_path.clone(),
                fsync,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("serve: registry startup failed: {e}"))?;
            // Operational chatter goes to stderr: on --stdio, stdout *is*
            // the protocol stream.
            eprintln!("# mtsp serve: {shards} shard(s), queue cap {queue_cap}");
            if let Some(dir) = &wal_path {
                let recovered = reg.counters().get(mtsp::obs::Counter::Recoveries);
                eprintln!(
                    "# mtsp serve: journaling to {} (fsync {}), {recovered} session(s) recovered",
                    dir.display(),
                    fsync.name()
                );
            }
            match transport {
                ServeTransport::Stdio => {
                    daemon::serve_stdio(&reg).map_err(|e| format!("serve: {e}"))?;
                    let c = reg.counters();
                    emit_metrics(
                        "serve",
                        &[
                            (
                                "requests",
                                c.get(mtsp::obs::Counter::ServeRequests).to_string(),
                            ),
                            (
                                "rejections",
                                c.get(mtsp::obs::Counter::ServeRejections).to_string(),
                            ),
                            (
                                "snapshots",
                                c.get(mtsp::obs::Counter::ServeSnapshots).to_string(),
                            ),
                            (
                                "wal_appends",
                                c.get(mtsp::obs::Counter::WalAppends).to_string(),
                            ),
                            (
                                "recoveries",
                                c.get(mtsp::obs::Counter::Recoveries).to_string(),
                            ),
                        ],
                    );
                    eprint!("{}", reg.render_gauges());
                }
                ServeTransport::Unix(path) => {
                    eprintln!("# mtsp serve: listening on unix socket {path}");
                    daemon::serve_unix(std::sync::Arc::new(reg), std::path::Path::new(&path))
                        .map_err(|e| format!("serve {path}: {e}"))?;
                }
                ServeTransport::Tcp(addr) => {
                    eprintln!("# mtsp serve: listening on tcp {addr}");
                    daemon::serve_tcp(std::sync::Arc::new(reg), &addr)
                        .map_err(|e| format!("serve {addr}: {e}"))?;
                }
            }
        }
        Command::Client {
            target,
            script,
            snapshot_out,
        } => {
            let script_text = match &script {
                Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
                None => {
                    use std::io::Read as _;
                    let mut s = String::new();
                    std::io::stdin()
                        .read_to_string(&mut s)
                        .map_err(|e| format!("stdin: {e}"))?;
                    s
                }
            };
            let outcome = match &target {
                ClientTarget::Unix(p) => {
                    mtsp::serve::client::run_script_unix(std::path::Path::new(p), &script_text)
                }
                ClientTarget::Tcp(a) => mtsp::serve::client::run_script_tcp(a, &script_text),
            }
            .map_err(|e| format!("client: {e}"))?;
            out.push_str(&outcome.transcript);
            if let Some(f) = snapshot_out {
                let body = outcome
                    .last_snapshot
                    .ok_or("--snapshot-out set but the transcript has no OK SNAPSHOT reply")?;
                std::fs::write(&f, body).map_err(|e| format!("{f}: {e}"))?;
            }
        }
        Command::Bounds { m } => {
            let p = our_params(m);
            let _ = writeln!(out, "machine size m = {m}:");
            let _ = writeln!(out, "  paper parameters: rho = {}, mu = {}", p.rho, p.mu);
            let _ = writeln!(
                out,
                "  min-max bound r(m)       = {:.6}",
                mtsp::analysis::minmax::objective(m, p.mu, p.rho)
            );
            let _ = writeln!(
                out,
                "  Theorem 4.1 bound        = {:.6}",
                theorem_4_1_bound(m)
            );
            let g = grid::grid_search(m, 10_000, 2);
            let _ = writeln!(
                out,
                "  grid optimum (Table 4)   = {:.6} at rho = {:.4}, mu = {}",
                g.r, g.rho, g.mu
            );
            let (ltw_mu, ltw_r) = ltw::table3_row(m);
            let _ = writeln!(
                out,
                "  LTW [18] bound (Table 3) = {ltw_r:.6} at mu = {ltw_mu}"
            );
        }
        Command::Lint {
            json,
            out: dest,
            root,
        } => {
            // The binary intercepts `lint` in `main` for its exit code;
            // this arm serves direct `run` callers (unit tests), where a
            // dirty tree surfaces as an error.
            let (text, code) = run_lint(json, dest, root)?;
            if code != 0 {
                return Err(format!("lint found diagnostics:\n{text}"));
            }
            out.push_str(&text);
        }
        Command::Tables { which } => {
            if which == "2" || which == "all" {
                out.push_str("Table 2 (m mu rho r):\n");
                for m in 2..=33 {
                    let (m, mu, rho, r) = ratio::table2_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {rho:>6.3} {r:>8.4}");
                }
            }
            if which == "3" || which == "all" {
                out.push_str("Table 3 (m mu r):\n");
                for m in 2..=33 {
                    let (mu, r) = ltw::table3_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {r:>8.4}");
                }
            }
            if which == "4" || which == "all" {
                out.push_str("Table 4 (m mu rho r):\n");
                for row in grid::table4(2..=33, 10_000, 2) {
                    let _ = writeln!(
                        out,
                        "{:>3} {:>3} {:>6.3} {:>8.4}",
                        row.m, row.mu, row.rho, row.r
                    );
                }
            }
        }
        Command::Solve {
            file,
            rho,
            mu,
            priority,
            improve,
            gantt,
            phase1,
        } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let default = our_params(ins.m());
            let params = Params {
                rho: rho.unwrap_or(default.rho),
                mu: mu.unwrap_or(default.mu),
            };
            let cfg = JzConfig {
                params: Some(params),
                priority,
                phase1,
                ..JzConfig::default()
            };
            let rep = schedule_jz_with(&ins, &cfg).map_err(|e| e.to_string())?;
            rep.schedule.verify(&ins).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let _ = writeln!(out, "params:   rho = {}, mu = {}", params.rho, params.mu);
            let _ = writeln!(out, "LP bound C*      = {:.6}", rep.lp.cstar);
            let _ = writeln!(out, "makespan         = {:.6}", rep.schedule.makespan());
            let _ = writeln!(out, "observed ratio   = {:.4}", rep.ratio_vs_cstar());
            let _ = writeln!(out, "guarantee r(m)   = {:.4}", rep.guarantee);
            let (final_schedule, final_alloc) = if improve {
                let res = improve_allotment(&ins, &rep.alloc, &ImproveOptions::default());
                let _ = writeln!(
                    out,
                    "local search:    {} moves, makespan {:.6}",
                    res.moves,
                    res.schedule.makespan()
                );
                (res.schedule, res.alloc)
            } else {
                (rep.schedule, rep.alloc)
            };
            let _ = writeln!(out, "allotments:      {final_alloc:?}");
            out.push_str(&final_schedule.render());
            if gantt {
                let sim = execute(&ins, &final_schedule).map_err(|e| e.to_string())?;
                out.push_str(&mtsp::sim::gantt(&final_schedule, &sim, 72));
            }
        }
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Usage errors (unknown command, malformed flags) exit 2; runtime
    // failures (bad files, solver errors, gate regressions) exit 1 — so
    // scripts can tell "you called it wrong" from "the run failed".
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    // `lint` owns its exit code (0 clean / 1 diagnostics) and must print
    // the report either way, so it bypasses the Ok/Err split of `run`.
    if let Command::Lint { json, out, root } = cmd {
        match run_lint(json, out, root) {
            Ok((text, code)) => {
                print!("{text}");
                std::process::exit(code);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    match run(cmd) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_solve_with_flags() {
        let cmd = parse_args(&argv(
            "solve inst.txt --rho 0.3 --mu 4 --priority bl --improve --gantt --phase1 bisection",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                file: "inst.txt".into(),
                rho: Some(0.3),
                mu: Some(4),
                priority: Priority::BottomLevel,
                improve: true,
                gantt: true,
                phase1: Phase1::Bisection,
            }
        );
        assert!(parse_args(&argv("solve a.txt --phase1 nope")).is_err());
    }

    #[test]
    fn parses_generate_defaults() {
        let cmd = parse_args(&argv("generate --dag chain --curve amdahl")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dag: DagFamily::Chain,
                curve: CurveFamily::Amdahl,
                n: 20,
                m: 8,
                seed: 0,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("solve")).is_err());
        assert!(parse_args(&argv("generate --dag nope --curve amdahl")).is_err());
        assert!(parse_args(&argv("tables 7")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("solve a.txt --rho")).is_err());
        assert!(parse_args(&argv("generate --dag chain --curve mixed extra")).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        let text = run(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn generate_then_solve_roundtrip() {
        let gen = run(Command::Generate {
            dag: DagFamily::Layered,
            curve: CurveFamily::PowerLaw,
            n: 10,
            m: 4,
            seed: 1,
        })
        .unwrap();
        let dir = std::env::temp_dir().join("mtsp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.txt");
        std::fs::write(&path, &gen).unwrap();

        let text = run(Command::Check {
            file: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(text.contains("admissible"));

        let text = run(Command::Solve {
            file: path.to_string_lossy().into_owned(),
            rho: None,
            mu: None,
            priority: Priority::TaskId,
            improve: true,
            gantt: true,
            phase1: Phase1::Lp,
        })
        .unwrap();
        assert!(text.contains("makespan"));
        assert!(text.contains("guarantee"));
        assert!(text.contains("p0"), "gantt rows expected");
    }

    #[test]
    fn parses_batch_and_bench_throughput() {
        let cmd = parse_args(&argv(
            "batch dir-a inst.txt --jobs 8 --cache --fresh-contexts",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                paths: vec!["dir-a".into(), "inst.txt".into()],
                jobs: 8,
                cache: true,
                fresh_contexts: true,
                trace: None,
            }
        );
        let cmd = parse_args(&argv("bench-throughput --n-instances 50 --distinct 5")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchThroughput {
                n_instances: 50,
                jobs: 0,
                distinct: 5,
                n: 20,
                m: 8,
                seed: 0,
            }
        );
        assert!(parse_args(&argv("batch --jobs 2")).is_err());
        assert!(parse_args(&argv("bench-throughput")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 0")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 2 --m 0")).is_err());
        assert!(parse_args(&argv("bench-throughput --n-instances 2 --n 0")).is_err());
    }

    #[test]
    fn parses_profile_and_trace_flags() {
        let cmd = parse_args(&argv("profile inst.txt --phase1 bisection --trace t.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Profile {
                file: "inst.txt".into(),
                phase1: Phase1::Bisection,
                trace: Some("t.json".into()),
            }
        );
        let cmd = parse_args(&argv("batch dir --trace t.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                paths: vec!["dir".into()],
                jobs: 0,
                cache: false,
                fresh_contexts: false,
                trace: Some("t.json".into()),
            }
        );
        let cmd = parse_args(&argv("replay --smoke --trace t.json")).unwrap();
        assert!(matches!(cmd, Command::Replay { trace: Some(_), .. }));
        assert!(parse_args(&argv("profile")).is_err());
        assert!(parse_args(&argv("profile a.txt --phase1 nope")).is_err());
        assert!(parse_args(&argv("profile a.txt --trace")).is_err());
        assert!(parse_args(&argv("profile a.txt b.txt")).is_err());
    }

    #[test]
    fn profile_and_trace_end_to_end() {
        let dir =
            std::env::temp_dir().join(format!("mtsp-cli-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let gen = run(Command::Generate {
            dag: DagFamily::Layered,
            curve: CurveFamily::PowerLaw,
            n: 10,
            m: 4,
            seed: 2,
        })
        .unwrap();
        let inst = dir.join("inst.txt");
        std::fs::write(&inst, &gen).unwrap();

        let profile = |trace: Option<String>| {
            run(Command::Profile {
                file: inst.to_string_lossy().into_owned(),
                phase1: Phase1::Lp,
                trace,
            })
            .unwrap()
        };
        let trace_path = dir.join("trace.json");
        let a = profile(Some(trace_path.to_string_lossy().into_owned()));
        assert!(a.contains("counters:"), "{a}");
        assert!(a.contains("lp.simplex_iterations"), "{a}");
        assert!(a.contains("core.rounding_passes"), "{a}");
        assert!(a.contains("trace written"), "{a}");
        let doc = mtsp::bench::json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")),
            "trace has at least one complete event"
        );
        // Everything on stdout except the trace confirmation is
        // deterministic — a plain run must produce the same bytes.
        let b = profile(None);
        let a_lines: Vec<&str> = a
            .lines()
            .filter(|l| !l.starts_with("trace written"))
            .collect();
        assert_eq!(a_lines, b.lines().collect::<Vec<&str>>());

        // batch --trace writes a parseable Chrome trace too.
        let btrace = dir.join("batch-trace.json");
        let text = run(Command::Batch {
            paths: vec![inst.to_string_lossy().into_owned()],
            jobs: 2,
            cache: false,
            fresh_contexts: false,
            trace: Some(btrace.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(text.contains("trace written"), "{text}");
        mtsp::bench::json::parse(&std::fs::read_to_string(&btrace).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_corpus_and_audit() {
        let cmd = parse_args(&argv(
            "corpus run spec.txt --jobs 4 --fresh-contexts --no-cache --window 7 --out r.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::CorpusRun {
                spec: "spec.txt".into(),
                jobs: 4,
                fresh_contexts: true,
                no_cache: true,
                window: 7,
                out: Some("r.json".into()),
            }
        );
        let cmd = parse_args(&argv("audit --smoke --write-baseline --perf-floor 2.5")).unwrap();
        assert_eq!(
            cmd,
            Command::Audit {
                smoke: true,
                jobs: 0,
                fresh_contexts: false,
                out: "BENCH_harness.json".into(),
                baseline: None,
                write_baseline: true,
                perf_floor: 2.5,
                tol: mtsp::harness::DEFAULT_RATIO_TOL,
                no_gate: false,
            }
        );
        assert!(parse_args(&argv("corpus")).is_err());
        assert!(parse_args(&argv("corpus run")).is_err());
        assert!(parse_args(&argv("corpus run a b")).is_err());
        assert!(parse_args(&argv("audit --perf-floor -1")).is_err());
        assert!(parse_args(&argv("audit extra")).is_err());
    }

    #[test]
    fn corpus_run_and_smoke_audit_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mtsp-cli-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.txt");
        std::fs::write(
            &spec_path,
            "mtsp-corpus v1\nname cli-test\ndags chain layered\ncurves power-law\nsizes 6\nmachines 3\nseeds 1 2\n",
        )
        .unwrap();

        // corpus run: report JSON on stdout, parseable, clean summary.
        let text = run(Command::CorpusRun {
            spec: spec_path.to_string_lossy().into_owned(),
            jobs: 2,
            fresh_contexts: false,
            no_cache: false,
            window: 2,
            out: None,
        })
        .unwrap();
        let report = mtsp::bench::json::parse(&text).unwrap();
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("instances").and_then(|v| v.as_i64()), Some(4));
        assert_eq!(
            summary.get("within_guarantee").and_then(|v| v.as_bool()),
            Some(true)
        );

        // audit --smoke: write baseline, then gate against it cleanly.
        let out_path = dir.join("BENCH_harness.json");
        let base_path = dir.join("baseline.json");
        let audit = |write_baseline: bool, tol: f64| {
            run(Command::Audit {
                smoke: true,
                jobs: 2,
                fresh_contexts: false,
                out: out_path.to_string_lossy().into_owned(),
                baseline: Some(base_path.to_string_lossy().into_owned()),
                write_baseline,
                perf_floor: 0.0,
                tol,
                no_gate: false,
            })
        };
        let text = audit(true, 1e-9).unwrap();
        assert!(text.contains("baseline written"));
        assert!(out_path.exists() && base_path.exists());
        let text = audit(false, 1e-9).unwrap();
        assert!(text.contains("gate: ok"), "{text}");
        assert!(text.contains("within_guarantee true"), "{text}");

        // A baseline demanding impossible ratios fails the gate.
        let base_text = std::fs::read_to_string(&base_path).unwrap();
        std::fs::write(&base_path, base_text.replace("\"max\": 1.", "\"max\": 0.")).unwrap();
        let err = audit(false, 1e-9).unwrap_err();
        assert!(err.contains("regression gate failed"), "{err}");
        assert!(err.contains("regressed"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_serve_and_client() {
        assert_eq!(
            parse_args(&argv("serve")).unwrap(),
            Command::Serve {
                transport: ServeTransport::Stdio,
                shards: 4,
                queue_cap: 128,
                max_sessions: mtsp::serve::Quotas::default().max_sessions,
                max_tasks: mtsp::serve::Quotas::default().max_tasks,
                max_replans_per_sec: mtsp::serve::Quotas::default().max_replans_per_sec,
                wal_dir: None,
                fsync: mtsp::serve::FsyncPolicy::Always,
            }
        );
        let cmd = parse_args(&argv(
            "serve --socket /tmp/s.sock --shards 2 --queue-cap 16 --max-sessions 3 \
             --max-tasks 50 --max-replans-per-sec 1.5 --wal-dir /tmp/wal --fsync interval",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                transport: ServeTransport::Unix("/tmp/s.sock".into()),
                shards: 2,
                queue_cap: 16,
                max_sessions: 3,
                max_tasks: 50,
                max_replans_per_sec: 1.5,
                wal_dir: Some("/tmp/wal".into()),
                fsync: mtsp::serve::FsyncPolicy::Interval,
            }
        );
        let cmd = parse_args(&argv("serve --tcp 127.0.0.1:9000")).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                transport: ServeTransport::Tcp(_),
                ..
            }
        ));
        assert!(parse_args(&argv("serve --stdio --tcp 127.0.0.1:9000")).is_err());
        assert!(parse_args(&argv("serve --socket a --tcp b")).is_err());
        assert!(parse_args(&argv("serve --shards 0")).is_err());
        assert!(parse_args(&argv("serve --queue-cap 0")).is_err());
        assert!(parse_args(&argv("serve --max-replans-per-sec -1")).is_err());
        assert!(parse_args(&argv("serve extra")).is_err());
        assert!(
            parse_args(&argv("serve --fsync always")).is_err(),
            "--fsync without --wal-dir is a config error"
        );
        assert!(parse_args(&argv("serve --wal-dir /tmp/w --fsync sometimes")).is_err());

        let cmd = parse_args(&argv(
            "client --socket /tmp/s.sock sc.txt --snapshot-out snap.txt",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                target: ClientTarget::Unix("/tmp/s.sock".into()),
                script: Some("sc.txt".into()),
                snapshot_out: Some("snap.txt".into()),
            }
        );
        let cmd = parse_args(&argv("client --tcp 127.0.0.1:9000 -")).unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                target: ClientTarget::Tcp("127.0.0.1:9000".into()),
                script: None,
                snapshot_out: None,
            }
        );
        assert!(parse_args(&argv("client sc.txt")).is_err());
        assert!(parse_args(&argv("client --socket a --tcp b sc.txt")).is_err());
        assert!(parse_args(&argv("client --socket a x y")).is_err());
    }

    #[test]
    fn version_flag_prints_the_crate_version() {
        assert_eq!(parse_args(&argv("--version")).unwrap(), Command::Version);
        assert_eq!(parse_args(&argv("-V")).unwrap(), Command::Version);
        assert_eq!(parse_args(&argv("version")).unwrap(), Command::Version);
        assert!(parse_args(&argv("--version extra")).is_err());
        let text = run(Command::Version).unwrap();
        assert_eq!(text, format!("mtsp {}\n", env!("CARGO_PKG_VERSION")));
    }

    #[test]
    fn parses_replay() {
        let cmd = parse_args(&argv("replay --smoke --jobs 4 --out r.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                spec: None,
                jobs: 4,
                out: Some("r.json".into()),
                noise: mtsp::sim::NoiseModel::None,
                seed: 0,
                trace: None,
            }
        );
        let cmd = parse_args(&argv("replay sc.txt --noise uniform:0.1 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                spec: Some("sc.txt".into()),
                jobs: 0,
                out: None,
                noise: mtsp::sim::NoiseModel::Uniform { epsilon: 0.1 },
                seed: 7,
                trace: None,
            }
        );
        assert!(parse_args(&argv("replay")).is_err());
        assert!(parse_args(&argv("replay a b")).is_err());
        assert!(parse_args(&argv("replay --smoke extra")).is_err());
        assert!(parse_args(&argv("replay sc.txt --noise uniform:1.5")).is_err());
        assert!(parse_args(&argv("replay sc.txt --noise bogus")).is_err());
    }

    #[test]
    fn replay_grid_and_scenario_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mtsp-cli-replay-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Built-in smoke grid on stdout: a parseable standalone report.
        let text = run(Command::Replay {
            spec: None,
            jobs: 2,
            out: None,
            noise: mtsp::sim::NoiseModel::None,
            seed: 0,
            trace: None,
        })
        .unwrap();
        let report = mtsp::bench::json::parse(&text).unwrap();
        assert_eq!(
            report.get("format").and_then(|v| v.as_str()),
            Some(mtsp::harness::SCENARIO_REPORT_FORMAT)
        );
        let s = report.get("summary").unwrap();
        assert_eq!(s.get("violations").and_then(|v| v.as_i64()), Some(0));
        assert_eq!(s.get("failures").and_then(|v| v.as_i64()), Some(0));

        // A concrete scenario file: staggered arrivals + a machine drop.
        let ins = random_instance(DagFamily::Layered, CurveFamily::PowerLaw, 8, 4, 3);
        let order = ins.dag().topological_order();
        let mut arrival = vec![0.0; ins.n()];
        for (k, &j) in order.iter().enumerate() {
            arrival[j] = k as f64 * 0.5;
        }
        let sc = mtsp::model::textio::Scenario::new(ins, arrival, vec![(1.25, 2)]).unwrap();
        let sc_path = dir.join("scenario.txt");
        std::fs::write(&sc_path, mtsp::model::textio::write_scenario(&sc)).unwrap();
        let text = run(Command::Replay {
            spec: Some(sc_path.to_string_lossy().into_owned()),
            jobs: 0,
            out: None,
            noise: mtsp::sim::NoiseModel::Slowdown { epsilon: 0.2 },
            seed: 9,
            trace: None,
        })
        .unwrap();
        let report = mtsp::bench::json::parse(&text).unwrap();
        assert_eq!(
            report.get("format").and_then(|v| v.as_str()),
            Some(mtsp::harness::SINGLE_REPLAY_FORMAT)
        );
        assert_eq!(report.get("feasible").and_then(|v| v.as_bool()), Some(true));
        assert!(report.get("epochs").unwrap().as_array().unwrap().len() >= 2);

        // Grid spec from a file, written to --out.
        let grid_path = dir.join("grid.txt");
        std::fs::write(
            &grid_path,
            "mtsp-replay v1\nname t\ndags chain\ncurves power-law\nsizes 6\nmachines 2\n\
             seeds 1\npatterns periodic\ngaps 1.0\nnoises none\n",
        )
        .unwrap();
        let out_path = dir.join("report.json");
        let text = run(Command::Replay {
            spec: Some(grid_path.to_string_lossy().into_owned()),
            jobs: 1,
            out: Some(out_path.to_string_lossy().into_owned()),
            noise: mtsp::sim::NoiseModel::None,
            seed: 0,
            trace: None,
        })
        .unwrap();
        assert!(text.contains("report written"));
        mtsp::bench::json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_output_is_deterministic_across_jobs() {
        // Process-id suffix: parallel test processes must not share the dir.
        let dir = std::env::temp_dir().join(format!("mtsp-cli-batch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seed in 0..6u64 {
            let gen = run(Command::Generate {
                dag: DagFamily::Layered,
                curve: CurveFamily::PowerLaw,
                n: 8,
                m: 4,
                seed: seed % 3, // duplicates exercise the cache
            })
            .unwrap();
            std::fs::write(dir.join(format!("inst{seed}.txt")), gen).unwrap();
        }
        // A stray non-instance file must become a per-job error line, not
        // kill the batch ("zz" sorts after the instance files -> job 6).
        std::fs::write(dir.join("zz-readme.txt"), "not an instance\n").unwrap();
        let batch = |jobs: usize, cache: bool, fresh_contexts: bool| {
            run(Command::Batch {
                paths: vec![dir.to_string_lossy().into_owned()],
                jobs,
                cache,
                fresh_contexts,
                trace: None,
            })
            .unwrap()
        };
        let sequential = batch(1, false, false);
        assert_eq!(
            sequential.lines().count(),
            1 + 7 + 7,
            "header + files + jobs"
        );
        assert!(sequential.contains("job 5:"));
        assert!(
            sequential.contains("job 6: error:"),
            "unparsable file reports per-job: {sequential}"
        );
        assert_eq!(
            sequential,
            batch(8, false, false),
            "worker count must not matter"
        );
        assert_eq!(sequential, batch(8, true, false), "cache must not matter");
        assert_eq!(
            sequential,
            batch(4, true, true),
            "context reuse must not matter"
        );
        let missing = run(Command::Batch {
            paths: vec!["/nonexistent/nope".into()],
            jobs: 1,
            cache: false,
            fresh_contexts: false,
            trace: None,
        });
        assert!(missing.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_throughput_runs_and_reports_speedup() {
        let text = run(Command::BenchThroughput {
            n_instances: 12,
            jobs: 4,
            distinct: 3,
            n: 8,
            m: 4,
            seed: 1,
        })
        .unwrap();
        assert!(text.contains("sequential, no cache"));
        assert!(text.contains("pool, warm cache"));
        assert!(text.contains("outputs byte-identical across modes: true"));
    }

    #[test]
    fn bounds_and_tables_commands_run() {
        let text = run(Command::Bounds { m: 8 }).unwrap();
        assert!(text.contains("Theorem 4.1"));
        assert!(text.contains("2.8659") || text.contains("2.866"));
        let text = run(Command::Tables { which: "2".into() }).unwrap();
        assert!(text.lines().count() >= 33);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(Command::Check {
            file: "/nonexistent/nope.txt".into(),
        })
        .unwrap_err();
        assert!(err.contains("nope.txt"));
    }
}
