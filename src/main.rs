//! `mtsp` — command-line interface to the malleable-task scheduler.
//!
//! ```text
//! mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
//! mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
//! mtsp check <file>
//! mtsp bounds <m>
//! mtsp tables [2|3|4|all]
//! ```
//!
//! Instances use the plain-text format of `mtsp::model::textio` (see
//! `mtsp generate` to produce one).

use mtsp::analysis::{grid, ltw, ratio};
use mtsp::core::improve::{improve_allotment, ImproveOptions};
use mtsp::core::two_phase::{schedule_jz_with, JzConfig, Phase1};
use mtsp::model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp::model::textio;
use mtsp::prelude::*;
use std::fmt::Write as _;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Solve {
        file: String,
        rho: Option<f64>,
        mu: Option<usize>,
        priority: Priority,
        improve: bool,
        gantt: bool,
        phase1: Phase1,
    },
    Generate {
        dag: DagFamily,
        curve: CurveFamily,
        n: usize,
        m: usize,
        seed: u64,
    },
    Check {
        file: String,
    },
    Bounds {
        m: usize,
    },
    Tables {
        which: String,
    },
    Help,
}

const USAGE: &str = "\
mtsp — scheduling malleable tasks with precedence constraints (Jansen-Zhang)

USAGE:
  mtsp solve <file> [--rho R] [--mu K] [--priority id|bl|wf] [--improve] [--gantt]
             [--phase1 lp|bisection]
  mtsp generate --dag <family> --curve <family> [--n N] [--m M] [--seed S]
  mtsp check <file>
  mtsp bounds <m>
  mtsp tables [2|3|4|all]

DAG families:   independent chain layered series-parallel fork-join cholesky
                wavefront random-tree
curve families: power-law amdahl random-concave logarithmic saturating mixed
";

fn parse_dag(s: &str) -> Result<DagFamily, String> {
    Ok(match s {
        "independent" => DagFamily::Independent,
        "chain" => DagFamily::Chain,
        "layered" => DagFamily::Layered,
        "series-parallel" => DagFamily::SeriesParallel,
        "fork-join" => DagFamily::ForkJoin,
        "cholesky" => DagFamily::Cholesky,
        "wavefront" => DagFamily::Wavefront,
        "random-tree" => DagFamily::RandomTree,
        other => return Err(format!("unknown dag family '{other}'")),
    })
}

fn parse_curve(s: &str) -> Result<CurveFamily, String> {
    Ok(match s {
        "power-law" => CurveFamily::PowerLaw,
        "amdahl" => CurveFamily::Amdahl,
        "random-concave" => CurveFamily::RandomConcave,
        "logarithmic" => CurveFamily::Logarithmic,
        "saturating" => CurveFamily::Saturating,
        "mixed" => CurveFamily::Mixed,
        other => return Err(format!("unknown curve family '{other}'")),
    })
}

fn parse_priority(s: &str) -> Result<Priority, String> {
    Ok(match s {
        "id" => Priority::TaskId,
        "bl" => Priority::BottomLevel,
        "wf" => Priority::WidestFirst,
        other => return Err(format!("unknown priority '{other}' (id|bl|wf)")),
    })
}

/// Parses `argv[1..]` into a [`Command`].
fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<&str> = it.collect();
    let take_value = |rest: &mut Vec<&str>, flag: &str| -> Result<Option<String>, String> {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            if pos + 1 >= rest.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = rest[pos + 1].to_string();
            rest.drain(pos..=pos + 1);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    };
    let take_flag = |rest: &mut Vec<&str>, flag: &str| -> bool {
        if let Some(pos) = rest.iter().position(|&a| a == flag) {
            rest.remove(pos);
            true
        } else {
            false
        }
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solve" => {
            let rho = take_value(&mut rest, "--rho")?
                .map(|v| v.parse::<f64>().map_err(|e| format!("bad --rho: {e}")))
                .transpose()?;
            let mu = take_value(&mut rest, "--mu")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --mu: {e}")))
                .transpose()?;
            let priority = take_value(&mut rest, "--priority")?
                .map(|v| parse_priority(&v))
                .transpose()?
                .unwrap_or(Priority::TaskId);
            let improve = take_flag(&mut rest, "--improve");
            let gantt = take_flag(&mut rest, "--gantt");
            let phase1 = match take_value(&mut rest, "--phase1")?.as_deref() {
                None | Some("lp") => Phase1::Lp,
                Some("bisection") => Phase1::Bisection,
                Some(other) => return Err(format!("unknown phase1 '{other}' (lp|bisection)")),
            };
            let [file] = rest.as_slice() else {
                return Err("solve needs exactly one instance file".into());
            };
            Ok(Command::Solve {
                file: file.to_string(),
                rho,
                mu,
                priority,
                improve,
                gantt,
                phase1,
            })
        }
        "generate" => {
            let dag = parse_dag(
                &take_value(&mut rest, "--dag")?.ok_or("generate needs --dag")?,
            )?;
            let curve = parse_curve(
                &take_value(&mut rest, "--curve")?.ok_or("generate needs --curve")?,
            )?;
            let n = take_value(&mut rest, "--n")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --n: {e}")))
                .transpose()?
                .unwrap_or(20);
            let m = take_value(&mut rest, "--m")?
                .map(|v| v.parse::<usize>().map_err(|e| format!("bad --m: {e}")))
                .transpose()?
                .unwrap_or(8);
            let seed = take_value(&mut rest, "--seed")?
                .map(|v| v.parse::<u64>().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(0);
            if !rest.is_empty() {
                return Err(format!("unexpected arguments: {rest:?}"));
            }
            Ok(Command::Generate {
                dag,
                curve,
                n,
                m,
                seed,
            })
        }
        "check" => {
            let [file] = rest.as_slice() else {
                return Err("check needs exactly one instance file".into());
            };
            Ok(Command::Check {
                file: file.to_string(),
            })
        }
        "bounds" => {
            let [m] = rest.as_slice() else {
                return Err("bounds needs a machine size".into());
            };
            Ok(Command::Bounds {
                m: m.parse().map_err(|e| format!("bad machine size: {e}"))?,
            })
        }
        "tables" => {
            let which = rest.first().copied().unwrap_or("all").to_string();
            if !["2", "3", "4", "all"].contains(&which.as_str()) {
                return Err(format!("unknown table '{which}' (2|3|4|all)"));
            }
            Ok(Command::Tables { which })
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Executes a command, returning the text to print.
fn run(cmd: Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Generate {
            dag,
            curve,
            n,
            m,
            seed,
        } => {
            let ins = random_instance(dag, curve, n, m, seed);
            out.push_str(&textio::write_instance(&ins));
        }
        Command::Check { file } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let reports = ins.verify_assumptions();
            let bad: Vec<usize> = reports
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.admissible())
                .map(|(j, _)| j)
                .collect();
            if bad.is_empty() {
                let _ = writeln!(out, "all tasks satisfy Assumptions 1 and 2: admissible");
            } else {
                let _ = writeln!(out, "inadmissible tasks (A1/A2 violated): {bad:?}");
            }
            let _ = writeln!(
                out,
                "combinatorial lower bound: {:.6}",
                ins.combinatorial_lower_bound()
            );
            let _ = writeln!(out, "serial upper bound:        {:.6}", ins.serial_upper_bound());
        }
        Command::Bounds { m } => {
            let p = our_params(m);
            let _ = writeln!(out, "machine size m = {m}:");
            let _ = writeln!(out, "  paper parameters: rho = {}, mu = {}", p.rho, p.mu);
            let _ = writeln!(
                out,
                "  min-max bound r(m)       = {:.6}",
                mtsp::analysis::minmax::objective(m, p.mu, p.rho)
            );
            let _ = writeln!(out, "  Theorem 4.1 bound        = {:.6}", theorem_4_1_bound(m));
            let g = grid::grid_search(m, 10_000, 2);
            let _ = writeln!(
                out,
                "  grid optimum (Table 4)   = {:.6} at rho = {:.4}, mu = {}",
                g.r, g.rho, g.mu
            );
            let (ltw_mu, ltw_r) = ltw::table3_row(m);
            let _ = writeln!(out, "  LTW [18] bound (Table 3) = {ltw_r:.6} at mu = {ltw_mu}");
        }
        Command::Tables { which } => {
            if which == "2" || which == "all" {
                out.push_str("Table 2 (m mu rho r):\n");
                for m in 2..=33 {
                    let (m, mu, rho, r) = ratio::table2_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {rho:>6.3} {r:>8.4}");
                }
            }
            if which == "3" || which == "all" {
                out.push_str("Table 3 (m mu r):\n");
                for m in 2..=33 {
                    let (mu, r) = ltw::table3_row(m);
                    let _ = writeln!(out, "{m:>3} {mu:>3} {r:>8.4}");
                }
            }
            if which == "4" || which == "all" {
                out.push_str("Table 4 (m mu rho r):\n");
                for row in grid::table4(2..=33, 10_000, 2) {
                    let _ = writeln!(
                        out,
                        "{:>3} {:>3} {:>6.3} {:>8.4}",
                        row.m, row.mu, row.rho, row.r
                    );
                }
            }
        }
        Command::Solve {
            file,
            rho,
            mu,
            priority,
            improve,
            gantt,
            phase1,
        } => {
            let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let ins = textio::parse_instance(&text).map_err(|e| e.to_string())?;
            let default = our_params(ins.m());
            let params = Params {
                rho: rho.unwrap_or(default.rho),
                mu: mu.unwrap_or(default.mu),
            };
            let cfg = JzConfig {
                params: Some(params),
                priority,
                phase1,
                ..JzConfig::default()
            };
            let rep = schedule_jz_with(&ins, &cfg).map_err(|e| e.to_string())?;
            rep.schedule.verify(&ins).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "instance: n = {}, m = {}", ins.n(), ins.m());
            let _ = writeln!(out, "params:   rho = {}, mu = {}", params.rho, params.mu);
            let _ = writeln!(out, "LP bound C*      = {:.6}", rep.lp.cstar);
            let _ = writeln!(out, "makespan         = {:.6}", rep.schedule.makespan());
            let _ = writeln!(out, "observed ratio   = {:.4}", rep.ratio_vs_cstar());
            let _ = writeln!(out, "guarantee r(m)   = {:.4}", rep.guarantee);
            let (final_schedule, final_alloc) = if improve {
                let res = improve_allotment(&ins, &rep.alloc, &ImproveOptions::default());
                let _ = writeln!(
                    out,
                    "local search:    {} moves, makespan {:.6}",
                    res.moves,
                    res.schedule.makespan()
                );
                (res.schedule, res.alloc)
            } else {
                (rep.schedule, rep.alloc)
            };
            let _ = writeln!(out, "allotments:      {final_alloc:?}");
            out.push_str(&final_schedule.render());
            if gantt {
                let sim = execute(&ins, &final_schedule).map_err(|e| e.to_string())?;
                out.push_str(&mtsp::sim::gantt(&final_schedule, &sim, 72));
            }
        }
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_solve_with_flags() {
        let cmd = parse_args(&argv(
            "solve inst.txt --rho 0.3 --mu 4 --priority bl --improve --gantt --phase1 bisection",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                file: "inst.txt".into(),
                rho: Some(0.3),
                mu: Some(4),
                priority: Priority::BottomLevel,
                improve: true,
                gantt: true,
                phase1: Phase1::Bisection,
            }
        );
        assert!(parse_args(&argv("solve a.txt --phase1 nope")).is_err());
    }

    #[test]
    fn parses_generate_defaults() {
        let cmd = parse_args(&argv("generate --dag chain --curve amdahl")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dag: DagFamily::Chain,
                curve: CurveFamily::Amdahl,
                n: 20,
                m: 8,
                seed: 0,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("solve")).is_err());
        assert!(parse_args(&argv("generate --dag nope --curve amdahl")).is_err());
        assert!(parse_args(&argv("tables 7")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("solve a.txt --rho")).is_err());
        assert!(parse_args(&argv("generate --dag chain --curve mixed extra")).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        let text = run(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn generate_then_solve_roundtrip() {
        let gen = run(Command::Generate {
            dag: DagFamily::Layered,
            curve: CurveFamily::PowerLaw,
            n: 10,
            m: 4,
            seed: 1,
        })
        .unwrap();
        let dir = std::env::temp_dir().join("mtsp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.txt");
        std::fs::write(&path, &gen).unwrap();

        let text = run(Command::Check {
            file: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(text.contains("admissible"));

        let text = run(Command::Solve {
            file: path.to_string_lossy().into_owned(),
            rho: None,
            mu: None,
            priority: Priority::TaskId,
            improve: true,
            gantt: true,
            phase1: Phase1::Lp,
        })
        .unwrap();
        assert!(text.contains("makespan"));
        assert!(text.contains("guarantee"));
        assert!(text.contains("p0"), "gantt rows expected");
    }

    #[test]
    fn bounds_and_tables_commands_run() {
        let text = run(Command::Bounds { m: 8 }).unwrap();
        assert!(text.contains("Theorem 4.1"));
        assert!(text.contains("2.8659") || text.contains("2.866"));
        let text = run(Command::Tables { which: "2".into() }).unwrap();
        assert!(text.lines().count() >= 33);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(Command::Check {
            file: "/nonexistent/nope.txt".into(),
        })
        .unwrap_err();
        assert!(err.contains("nope.txt"));
    }
}
