#![warn(missing_docs)]
//! # mtsp — Scheduling Malleable Tasks with Precedence constraints
//!
//! A full reproduction of Klaus Jansen and Hu Zhang, *Scheduling malleable
//! tasks with precedence constraints* (SPAA 2005; JCSS 78(1), 2012): the
//! `≈3.291919`-approximation two-phase algorithm for makespan minimization
//! of malleable tasks under precedence constraints, together with every
//! substrate it needs — precedence DAGs, the malleable-task model, an LP
//! solver, a machine simulator — and the paper's complete numerical
//! analysis (Tables 2–4, Figures 1–4, the asymptotics of Section 4.3).
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use mtsp::prelude::*;
//!
//! // Three tasks: 0 -> {1, 2}, power-law speedups, 8 processors.
//! let dag = Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
//! let profiles = vec![
//!     Profile::power_law(6.0, 0.8, 8).unwrap(),
//!     Profile::amdahl(4.0, 0.2, 8).unwrap(),
//!     Profile::power_law(9.0, 0.5, 8).unwrap(),
//! ];
//! let instance = Instance::new(dag, profiles).unwrap();
//!
//! let report = schedule_jz(&instance).unwrap();
//! report.schedule.verify(&instance).unwrap();
//! assert!(report.observed_ratio() <= report.guarantee);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

/// Ratio analysis and tables (re-export of `mtsp-analysis`).
pub use mtsp_analysis as analysis;
/// Experiment machinery, including the hand-rolled JSON of the quality
/// reports (re-export of `mtsp-bench`).
pub use mtsp_bench as bench;
/// The two-phase algorithm (re-export of `mtsp-core`).
pub use mtsp_core as core;
/// Precedence-DAG substrate (re-export of `mtsp-dag`).
pub use mtsp_dag as dag;
/// Batch scheduling service (re-export of `mtsp-engine`).
pub use mtsp_engine as engine;
/// Corpus ratio-audit pipeline (re-export of `mtsp-harness`).
pub use mtsp_harness as harness;
/// Determinism & panic-safety static analysis (re-export of
/// `mtsp-lint`).
pub use mtsp_lint as lint;
/// LP substrate (re-export of `mtsp-lp`).
pub use mtsp_lp as lp;
/// Malleable-task model (re-export of `mtsp-model`).
pub use mtsp_model as model;
/// Solve telemetry — deterministic counters and the span profiler
/// (re-export of `mtsp-obs`).
pub use mtsp_obs as obs;
/// Multi-tenant scheduling daemon (re-export of `mtsp-serve`).
pub use mtsp_serve as serve;
/// Machine simulator (re-export of `mtsp-sim`).
pub use mtsp_sim as sim;

/// The commonly used names in one import.
pub mod prelude {
    pub use mtsp_analysis::ratio::{our_params, theorem_4_1_bound, Params};
    pub use mtsp_core::two_phase::{schedule_jz, schedule_jz_with, JzConfig, JzReport};
    pub use mtsp_core::{list_schedule, Priority, Schedule, ScheduledTask};
    pub use mtsp_dag::Dag;
    pub use mtsp_engine::{instance_key, BatchReport, Engine, EngineConfig, StreamSession};
    pub use mtsp_harness::{check_regression, make_baseline, run_corpus, Corpus, RunConfig};
    pub use mtsp_lp::{SolveContext, SolverOptions};
    pub use mtsp_model::{Instance, Profile};
    pub use mtsp_sim::{execute, execute_online, NoiseModel};
}
