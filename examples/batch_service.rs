//! Batch service quickstart: feed a stream of malleable-DAG instances
//! through the `mtsp-engine` worker pool and solve cache, and read the
//! service-level metrics.
//!
//! Run with: `cargo run --release --example batch_service`

use mtsp::model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp::prelude::*;

fn main() {
    // A request stream of 60 jobs. Real batch traffic repeats itself —
    // parameter sweeps, retries, identical DAG shapes resubmitted by many
    // users — so this stream cycles over only 12 distinct instances.
    let jobs: Vec<Instance> = (0..60)
        .map(|i| {
            random_instance(
                DagFamily::Layered,
                CurveFamily::Mixed,
                16, // tasks per instance
                8,  // processors
                (i % 12) as u64,
            )
        })
        .collect();

    // An engine: worker pool + canonical-key solve cache. Every knob has a
    // default (workers = available cores, cache on, 16 shards).
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });

    // First pass: roughly one LP-solve miss per distinct instance (two
    // workers racing on a key may both miss — harmless, see the cache
    // docs), everything else hits.
    let report = engine.solve_batch(&jobs);
    println!("== first pass ==");
    print!("{}", report.metrics.render());

    // Second pass: the cache is warm, every job is a lookup.
    let warm = engine.solve_batch(&jobs);
    println!("\n== second pass (warm cache) ==");
    print!("{}", warm.metrics.render());

    // Results arrive in submission order, whatever the pool did: job i of
    // the report is job i of the input, byte-for-byte reproducible.
    assert_eq!(report.render_results(), warm.render_results());
    let first = report.results[0].as_ref().expect("admissible instance");
    println!(
        "\njob 0: key {} -> makespan {:.4} (guarantee {:.3})",
        instance_key(&jobs[0]),
        first.schedule.makespan(),
        first.guarantee
    );

    // The cache is shared by every entry point of the engine, including
    // single solves:
    let again = engine.solve(&jobs[0]).expect("cache hit");
    assert!(std::sync::Arc::ptr_eq(first, &again));
    println!(
        "cache after both passes: {} entries, {:.1}% hit rate",
        engine.cache_stats().entries,
        100.0 * engine.cache_stats().hit_rate()
    );
}
