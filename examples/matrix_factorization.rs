//! Structure-driven multiprocessor compilation of numeric problems
//! (after Prasanna's MIT/LCS/TR-502 — references \[22–25\] of the paper):
//! blocked Cholesky and LU factorization task graphs whose kernels are
//! malleable with power-law speedups `p(1)·l^{−d}`, exactly the
//! Prasanna–Musicus family the paper builds its model on.
//!
//! Run with: `cargo run --release --example matrix_factorization`

use mtsp::core::heavy_path::{heavy_path, low_slot_coverage};
use mtsp::dag::{generate, stats::DagStats};
use mtsp::prelude::*;

/// Profiles for a factorization DAG: kernel flop counts scale with block
/// position, parallelizability `d` differs per kernel type (GEMM-like
/// updates parallelize best). We approximate kernel type by in-degree.
fn kernel_profiles(dag: &Dag, m: usize, base: f64) -> Vec<Profile> {
    (0..dag.node_count())
        .map(|v| {
            let indeg = dag.in_degree(v);
            let (work, d) = match indeg {
                0 | 1 => (base, 0.55),   // panel factorizations: limited
                2 => (1.6 * base, 0.75), // triangular solves
                _ => (2.4 * base, 0.95), // trailing updates: near-linear
            };
            Profile::power_law(work, d, m).expect("valid parameters")
        })
        .collect()
}

fn run(name: &str, dag: Dag, m: usize) {
    let stats = DagStats::of(&dag);
    let profiles = kernel_profiles(&dag, m, 4.0);
    let ins = Instance::new(dag, profiles).expect("consistent");
    assert!(ins.is_admissible());

    let rep = schedule_jz(&ins).expect("schedules");
    rep.schedule.verify(&ins).expect("feasible");
    let sim = mtsp::sim::execute(&ins, &rep.schedule).expect("executable");

    // The Fig. 2 construction on a real workload: the heavy path that
    // certifies the critical-path part of the analysis.
    let path = heavy_path(ins.dag(), &rep.schedule, rep.params.mu);
    let cov = low_slot_coverage(&rep.schedule, rep.params.mu, &path);

    println!("{name} on m = {m}:");
    println!("  dag        : {stats}");
    println!(
        "  LP bound {:.3} | makespan {:.3} | ratio {:.3} (guarantee {:.3})",
        rep.lp.cstar,
        rep.schedule.makespan(),
        rep.ratio_vs_cstar(),
        rep.guarantee
    );
    println!(
        "  utilization {:.1}% | heavy path: {} tasks, covers {:.0}% of T1+T2",
        100.0 * sim.utilization(),
        path.len(),
        100.0 * cov
    );
    let profile = rep.schedule.slot_profile(rep.params.mu);
    println!(
        "  slot classes: |T1| = {:.3}, |T2| = {:.3}, |T3| = {:.3}",
        profile.t1, profile.t2, profile.t3
    );
    println!();
}

fn main() {
    for m in [8usize, 16] {
        run("blocked Cholesky (6x6 blocks)", generate::cholesky(6), m);
        run("blocked LU (5x5 blocks)", generate::lu(5), m);
        run("FFT butterfly (64 points)", generate::fft(6), m);
    }
    println!("note: GEMM-heavy graphs keep T3 (high-utilization) slots dominant;");
    println!("the heavy path always covers the low-utilization slots (Lemma 4.3).");
}
