//! Adaptive-mesh ocean-circulation workload (after Blayo–Debreu–Mounié–
//! Trystram, Euro-Par 1999 — reference \[2\] of the paper, the application
//! that motivated the monotone malleable-task model).
//!
//! An adaptive ocean model advances a coarse grid each time step and
//! spawns refined sub-grids where eddies need resolution. Each (sub-)grid
//! update is a malleable task: it parallelizes well up to the number of
//! mesh blocks it owns and saturates beyond that (Amdahl-style). Step
//! `t+1`'s coarse update depends on step `t`'s coarse update and on all of
//! step `t`'s refinements; refinements depend on their step's coarse
//! update.
//!
//! Run with: `cargo run --release --example ocean_circulation`

use mtsp::core::baselines;
use mtsp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds `steps` time steps; each step has one coarse task plus a random
/// number of refinement tasks.
fn build_ocean_instance(steps: usize, m: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut profiles: Vec<Profile> = Vec::new();
    let mut prev_step_tasks: Vec<usize> = Vec::new();

    for _ in 0..steps {
        let coarse = profiles.len();
        // The coarse solve scales well: big grid, little serial overhead.
        profiles.push(Profile::amdahl(30.0 + rng.gen_range(0.0..10.0), 0.04, m).unwrap());
        for &p in &prev_step_tasks {
            edges.push((p, coarse));
        }
        let refinements = rng.gen_range(1..=4usize);
        let mut this_step = vec![coarse];
        for _ in 0..refinements {
            let r = profiles.len();
            // Refined patches are smaller and saturate quickly.
            let work = 6.0 + rng.gen_range(0.0..12.0);
            let serial_frac = rng.gen_range(0.15..0.45);
            profiles.push(Profile::amdahl(work, serial_frac, m).unwrap());
            edges.push((coarse, r));
            this_step.push(r);
        }
        prev_step_tasks = this_step;
    }
    let dag = Dag::from_edges(profiles.len(), &edges).expect("construction is acyclic");
    Instance::new(dag, profiles).expect("consistent instance")
}

fn main() {
    println!("adaptive-mesh ocean circulation: ours vs baselines");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "m", "tasks", "LP bound", "ours", "LTW-style", "serial", "ratio", "guarantee"
    );
    for m in [4usize, 8, 16, 32] {
        let ins = build_ocean_instance(12, m, 0xB10C + m as u64);
        assert!(ins.is_admissible());

        let ours = schedule_jz(&ins).expect("schedules");
        ours.schedule.verify(&ins).expect("feasible");
        let ltw = baselines::ltw_baseline(&ins).expect("schedules");
        let serial = baselines::serial_baseline(&ins);

        println!(
            "{:>4} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8.3} {:>9.3}",
            m,
            ins.n(),
            ours.lp.cstar,
            ours.schedule.makespan(),
            ltw.schedule.makespan(),
            serial.makespan(),
            ours.ratio_vs_cstar(),
            ours.guarantee,
        );
    }

    // Robustness: replay the chosen allotment online with execution noise,
    // as a real ocean run would experience (experiment E4).
    println!();
    println!("robustness of the m = 16 plan under execution-time noise:");
    let ins = build_ocean_instance(12, 16, 0xB10C + 16);
    let plan = schedule_jz(&ins).unwrap();
    for eps in [0.0, 0.05, 0.10, 0.20] {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let s = execute_online(
                &ins,
                &plan.alloc,
                Priority::TaskId,
                if eps == 0.0 {
                    NoiseModel::None
                } else {
                    NoiseModel::Uniform { epsilon: eps }
                },
                seed,
            );
            worst = worst.max(s.makespan());
            sum += s.makespan();
        }
        println!(
            "  eps = {:>4.2}: mean makespan {:>8.3}, worst {:>8.3} (planned {:>8.3})",
            eps,
            sum / runs as f64,
            worst,
            plan.schedule.makespan()
        );
    }
}
