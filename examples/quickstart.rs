//! Quickstart: build a small malleable-task instance, run the Jansen–Zhang
//! two-phase algorithm, inspect the schedule and its certificates.
//!
//! Run with: `cargo run --release --example quickstart`

use mtsp::prelude::*;

fn main() {
    // A machine with 8 identical processors.
    let m = 8;

    // Six tasks forming a small pipeline-with-fanout DAG:
    //
    //        0 ──▶ 1 ──▶ 3 ──▶ 5
    //        └───▶ 2 ──▶ 4 ────┘
    let dag = Dag::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)])
        .expect("edge list is acyclic");

    // Malleable profiles satisfying the paper's Assumptions 1 and 2:
    // power-law speedups p(l) = p(1) * l^{-d} (the Prasanna-Musicus family)
    // and an Amdahl task with a 30% serial fraction.
    let profiles = vec![
        Profile::power_law(10.0, 0.9, m).unwrap(),
        Profile::power_law(16.0, 0.6, m).unwrap(),
        Profile::amdahl(12.0, 0.3, m).unwrap(),
        Profile::power_law(8.0, 1.0, m).unwrap(),
        Profile::power_law(14.0, 0.4, m).unwrap(),
        Profile::amdahl(6.0, 0.1, m).unwrap(),
    ];
    let instance = Instance::new(dag, profiles).expect("consistent instance");
    assert!(instance.is_admissible(), "Assumptions 1 + 2 hold");

    // Run the two-phase algorithm with the paper's parameters rho(m), mu(m).
    let report = schedule_jz(&instance).expect("admissible instance schedules");
    report
        .schedule
        .verify(&instance)
        .expect("schedule is feasible");

    println!("== phase 1 (allotment LP + rounding) ==");
    println!("  LP optimum C*            : {:.4}", report.lp.cstar);
    println!("  fractional path length L*: {:.4}", report.lp.lstar);
    println!("  fractional work W*       : {:.4}", report.lp.wstar);
    println!(
        "  parameters               : rho = {}, mu = {}",
        report.params.rho, report.params.mu
    );
    println!("  allotment alpha'         : {:?}", report.alloc_prime);
    println!("  capped allotment alpha   : {:?}", report.alloc);
    println!();
    println!("== phase 2 (LIST) ==");
    print!("{}", report.schedule.render());
    println!();
    println!("== certificates ==");
    println!("  lower bound max(L*, W*/m): {:.4}", report.lower_bound);
    println!(
        "  makespan                 : {:.4}",
        report.schedule.makespan()
    );
    println!(
        "  observed ratio           : {:.4}",
        report.observed_ratio()
    );
    println!("  a-priori guarantee r(m)  : {:.4}", report.guarantee);
    println!("  Theorem 4.1 bound        : {:.4}", theorem_4_1_bound(m));

    // Execute on the simulated machine with concrete processor ids.
    let sim = mtsp::sim::execute(&instance, &report.schedule).expect("executable");
    println!();
    println!("== simulated execution ==");
    println!("  utilization: {:.1}%", 100.0 * sim.utilization());
    print!("{}", sim.trace.render());
}
