//! Ablation of the paper's design choices (experiment E2 of DESIGN.md):
//! how the rounding parameter `ρ` and the cap `μ` move the *measured*
//! makespan, compared with the analytic min–max bound that the paper
//! optimizes. Also contrasts the paper's fixed parameters against the
//! Table 4 grid optimum and the Section 4.3 continuous-ρ optimum.
//!
//! Run with: `cargo run --release --example parameter_study`

use mtsp::analysis::{asymptotic, grid, minmax};
use mtsp::core::two_phase::{schedule_jz_with, JzConfig};
use mtsp::model::generate::{random_instance, CurveFamily, DagFamily};
use mtsp::prelude::*;

fn main() {
    let m = 16usize;
    let ins = random_instance(DagFamily::Layered, CurveFamily::Mixed, 60, m, 2024);
    let paper = our_params(m);

    println!("workload: layered random DAG, n = {}, m = {m}", ins.n());
    println!();
    println!("-- rho sweep (mu fixed at paper's mu = {}) --", paper.mu);
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "rho", "makespan", "obs. ratio", "bound r"
    );
    for i in 0..=10 {
        let rho = i as f64 / 10.0;
        let cfg = JzConfig {
            params: Some(Params { rho, mu: paper.mu }),
            ..JzConfig::default()
        };
        let rep = schedule_jz_with(&ins, &cfg).expect("schedules");
        println!(
            "{:>6.2} {:>12.4} {:>12.4} {:>12.4}",
            rho,
            rep.schedule.makespan(),
            rep.ratio_vs_cstar(),
            minmax::objective(m, paper.mu, rho)
        );
    }

    println!();
    println!("-- mu sweep (rho fixed at paper's rho = {}) --", paper.rho);
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "mu", "makespan", "obs. ratio", "bound r"
    );
    for mu in 1..=m / 2 + 1 {
        let cfg = JzConfig {
            params: Some(Params { rho: paper.rho, mu }),
            ..JzConfig::default()
        };
        let rep = schedule_jz_with(&ins, &cfg).expect("schedules");
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4}",
            mu,
            rep.schedule.makespan(),
            rep.ratio_vs_cstar(),
            minmax::objective(m, mu, paper.rho)
        );
    }

    println!();
    println!("-- parameter selections for m = {m} --");
    let g = grid::grid_search(m, 10_000, 4);
    let rho_cont = asymptotic::optimal_rho(m);
    println!(
        "  paper (Eq. 19/20) : rho = {:.4}, mu = {:>2}, bound = {:.6}",
        paper.rho,
        paper.mu,
        minmax::objective(m, paper.mu, paper.rho)
    );
    println!(
        "  grid (Table 4)    : rho = {:.4}, mu = {:>2}, bound = {:.6}",
        g.rho, g.mu, g.r
    );
    println!(
        "  continuous Sec4.3 : rho = {:.4} (bound with continuous mu = {:.6})",
        rho_cont,
        asymptotic::continuous_objective(m, rho_cont)
    );
    println!(
        "  asymptotic        : rho* = {:.6}, r -> {:.6}",
        asymptotic::asymptotic_rho(),
        asymptotic::asymptotic_ratio()
    );
}
