//! Regenerates the paper's Tables 2, 3 and 4 from the analysis toolkit —
//! the CLI twin of the `mtsp-bench` table binaries.
//!
//! Run with: `cargo run --release --example ratio_tables`

use mtsp::analysis::{asymptotic, grid, ltw, ratio};

fn main() {
    println!("Table 2: bounds for this paper's algorithm (rho-hat = 0.26, mu from Eq. 20)");
    println!("{:>4} {:>5} {:>7} {:>9}", "m", "mu", "rho", "r");
    for m in 2..=33 {
        let (m, mu, rho, r) = ratio::table2_row(m);
        println!("{m:>4} {mu:>5} {rho:>7.3} {r:>9.4}");
    }

    println!();
    println!("Table 3: bounds for the Lepere-Trystram-Woeginger algorithm [18]");
    println!("{:>4} {:>5} {:>9}", "m", "mu", "r");
    for m in 2..=33 {
        let (mu, r) = ltw::table3_row(m);
        println!("{m:>4} {mu:>5} {r:>9.4}");
    }

    println!();
    println!("Table 4: numerical optimum of the min-max program (grid, d-rho = 1e-4)");
    println!("{:>4} {:>5} {:>7} {:>9}", "m", "mu", "rho", "r");
    for row in grid::table4(2..=33, 10_000, 4) {
        println!("{:>4} {:>5} {:>7.3} {:>9.4}", row.m, row.mu, row.rho, row.r);
    }

    println!();
    println!("Constants:");
    println!(
        "  Corollary 4.1 bound      : {:.6} (paper: 3.291919)",
        ratio::corollary_4_1_constant()
    );
    println!(
        "  asymptotic optimum (4.3) : rho* = {:.6}, mu*/m -> {:.6}, r -> {:.6}",
        asymptotic::asymptotic_rho(),
        asymptotic::mu_fraction(asymptotic::asymptotic_rho()),
        asymptotic::asymptotic_ratio()
    );
    println!(
        "  LTW asymptotic constant  : {:.6} (3 + sqrt 5)",
        ltw::ltw_asymptotic_constant()
    );
}
